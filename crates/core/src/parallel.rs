//! Symmetric-multiprocessor extension — the paper's SMP future work
//! (§7).
//!
//! "It appears that the idea proposed in this paper can be extended in
//! a straightforward manner to improve performance on symmetric
//! multiprocessors, but this remains to be demonstrated."
//!
//! [`ParScheduler`] is that demonstration: hints bin threads exactly
//! as in the sequential [`Scheduler`](crate::Scheduler), and
//! [`run`](ParScheduler::run) hands out *whole bins* to worker OS
//! threads. A bin is the unit of work distribution because it is the
//! unit of locality: every thread of a bin runs on the same core, so
//! the bin's cache-sized working set is loaded once into that core's
//! cache — per-core locality scheduling plus cache-affinity placement
//! in one mechanism (compare Squillante & Lazowska's affinity
//! scheduling, reference [38] of the paper).
//!
//! # Work distribution and stealing
//!
//! The bin tour is split into one *contiguous* segment per worker,
//! balanced by thread count, so each core starts with a contiguous
//! stretch of scheduling space — adjacent bins share block boundaries,
//! and a core walking its segment front-to-back replays the sequential
//! scheduler's locality within its slice. Each segment lives in a
//! per-worker deque of tour positions. An owner pops from the *front*
//! (the hot end, nearest its current bin); a worker whose deque drains
//! steals *half* a victim's deque from the *back* (the cold end, the
//! work the victim would reach last) according to the configured
//! [`StealPolicy`]. Stealing whole bins from the cold end keeps both
//! parties contiguous: the victim keeps the half adjacent to what it
//! is executing, and the thief receives an unbroken run of tour
//! positions. [`StealPolicy::LocalityAware`] additionally picks the
//! victim whose cold end is *farthest* (Manhattan distance over block
//! coordinates) from that victim's currently-executing bin — the bins
//! least likely to share a cache-sized working set with the victim's
//! near-term work, so the transfer costs the victim the least reuse.
//! [`StealPolicy::TopologyAware`] instead scores victims from the
//! *thief's* side: over the policy's ancestor ladder (derived from the
//! machine topology), it ranks each victim's cold end by the depth of
//! its lowest common ancestor with the bin the thief just finished and
//! steals from the nearest subtree first — work that still shares part
//! of the thief's warm cache hierarchy.
//!
//! # Concurrency contract
//!
//! Because threads now run concurrently, bodies take the context by
//! *shared* reference (`fn(&C, usize, usize)`) and the context must be
//! [`Sync`]; writes go through interior mutability (atomics, or
//! disjoint-index cells the caller vouches for). Threads remain
//! independent and run-to-completion; there is no synchronization
//! between them beyond deque transfers and the final join. Work only
//! ever moves *between deques* (under their mutexes), so every forked
//! thread is executed exactly once by exactly one worker regardless of
//! how steals interleave.

use crate::config::StealPolicy;
use crate::engine::{Bin, BinEngine};
use crate::hint::MAX_DIMS;
use crate::policy::{BinPolicy, PaperBlockHash};
use crate::stats::{RunStats, SchedulerStats, WorkerStats};
use crate::table::BinId;
use crate::{Hints, SchedulerConfig};
use memtrace::{SchedEvent, ScheduleLog};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A thread body for parallel execution: shared context plus the two
/// word-sized arguments.
pub type ParThreadFn<C> = fn(&C, usize, usize);

#[derive(Clone, Copy, Debug)]
pub(crate) struct ParSpec<C> {
    func: ParThreadFn<C>,
    arg1: usize,
    arg2: usize,
}

/// Sentinel for "this worker is not executing any bin".
const NO_BIN: usize = usize::MAX;

/// One worker's share of the tour: a deque of tour positions guarded
/// by a mutex (owner pops front, thieves split the back), plus the
/// tour position the worker is currently executing, published so
/// locality-aware thieves can score this worker as a victim. `current`
/// may lag by one bin while the owner is between pops; victim scoring
/// tolerates that staleness.
struct WorkerQueue {
    deque: Mutex<VecDeque<u32>>,
    current: AtomicUsize,
}

impl WorkerQueue {
    fn new() -> Self {
        WorkerQueue {
            deque: Mutex::new(VecDeque::new()),
            current: AtomicUsize::new(NO_BIN),
        }
    }
}

/// Probe observations for one parallel run, shared by all workers
/// (every primitive is either atomic or a no-op ZST, so `&ParObs` is
/// `Sync` in both probe modes). Kept out of [`WorkerStats`] so the
/// always-on report stays identical whether or not probes are compiled
/// in; flushed into [`ParRunReport::profile`] after the join.
#[derive(Default)]
struct ParObs {
    /// Tour positions moved per successful half-steal.
    steal_size: probe::Histogram,
    /// Deque depths observed at partition time and after each transfer
    /// (thief's new depth, victim's remainder) — the histogram's `max`
    /// is the run's deque-depth high-water mark.
    deque_depth: probe::Histogram,
    /// Wall time one worker spent draining one bin.
    bin_run_ns: probe::Histogram,
    /// Steals that moved at least one tour position.
    half_steals: probe::Counter,
    /// Lowest-common-ancestor depth of each successful topology-aware
    /// steal (0 = same finest bin block, ladder depth = unrelated
    /// subtrees). Empty under the other policies.
    steal_distance: probe::Histogram,
}

impl ParObs {
    /// Flushes the observations into a `"par"` profile section.
    fn section(&self) -> probe::Section {
        let mut section = probe::Section::new("par");
        section
            .counter("half_steals", self.half_steals.get())
            .histogram("steal_size", &self.steal_size)
            .histogram("deque_depth", &self.deque_depth)
            .histogram("bin_run_ns", &self.bin_run_ns)
            .histogram("steal_distance", &self.steal_distance);
        section
    }
}

/// Everything one parallel run did: the aggregate [`RunStats`], the
/// consumed schedule's bin distribution, and per-worker steal /
/// execution counters. Produced by [`ParScheduler::run_report`];
/// serializable with [`to_json`](ParRunReport::to_json) for benchmark
/// harnesses.
#[derive(Clone, Debug)]
pub struct ParRunReport {
    /// Steal policy the run used.
    pub policy: StealPolicy,
    /// Number of worker threads the run was asked to use.
    pub workers: usize,
    /// Aggregate outcome, identical to what [`ParScheduler::run`]
    /// returns.
    pub run: RunStats,
    /// Bin distribution of the consumed schedule, with one
    /// [`WorkerStats`] entry per worker.
    pub stats: SchedulerStats,
    /// Probe observations (steal sizes, deque high-water marks,
    /// per-bin run times). Empty when the probe layer is compiled out.
    pub profile: probe::RunProfile,
    /// The *observed* schedule-event stream of this run: actor 0 is the
    /// partitioning coordinator, actors 1..=workers the workers. Each
    /// drain unit (tour position) appears as exactly one
    /// [`DrainBegin`](SchedEvent::DrainBegin)/[`DrainEnd`](SchedEvent::DrainEnd)
    /// pair on the worker that executed it, with
    /// [`Steal`](SchedEvent::Steal) provenance events where deque
    /// halves moved. Event *content* depends on how steals raced, so
    /// the log is for structural checks (every unit drained exactly
    /// once, steals consistent with counters), not for byte-stable
    /// artifacts — reproducible analysis uses modeled logs instead.
    pub schedule: ScheduleLog,
}

impl ParRunReport {
    /// Serializes the report as a single-line JSON object with
    /// aggregate fields and a `per_worker` array.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"policy\":\"{}\",\"workers\":{},\"threads_run\":{},\"bins_visited\":{},\
             \"steals_attempted\":{},\"steals_succeeded\":{},\"makespan_ns\":{},\
             \"per_worker\":[",
            self.policy,
            self.workers,
            self.run.threads_run,
            self.run.bins_visited,
            self.stats.steals_attempted(),
            self.stats.steals_succeeded(),
            self.stats.makespan_ns(),
        );
        for (i, w) in self.stats.workers().iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(
                json,
                "{{\"worker\":{i},\"bins_executed\":{},\"threads_executed\":{},\
                 \"steals_attempted\":{},\"steals_succeeded\":{},\"busy_ns\":{},\
                 \"parked_ns\":{}}}",
                w.bins_executed,
                w.threads_executed,
                w.steals_attempted,
                w.steals_succeeded,
                w.busy_ns,
                w.parked_ns,
            )
            .expect("writing to String cannot fail");
        }
        json.push(']');
        if probe::enabled() && !self.profile.is_empty() {
            write!(json, ",\"run_profile\":{}", self.profile.to_json())
                .expect("writing to String cannot fail");
        }
        json.push('}');
        json
    }
}

/// A locality scheduler whose `run` executes bins on multiple worker
/// threads.
///
/// # Examples
///
/// ```
/// use locality_sched::{Hints, ParScheduler, SchedulerConfig};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// struct Ctx {
///     sums: Vec<AtomicU64>,
/// }
/// fn body(ctx: &Ctx, slot: usize, value: usize) {
///     ctx.sums[slot].fetch_add(value as u64, Ordering::Relaxed);
/// }
///
/// let mut sched = ParScheduler::new(SchedulerConfig::default());
/// for i in 0..100usize {
///     sched.fork(body, i % 4, i, Hints::one((i as u64 * 100_000).into()));
/// }
/// let ctx = Ctx {
///     sums: (0..4).map(|_| AtomicU64::new(0)).collect(),
/// };
/// let stats = sched.run(&ctx, 4);
/// assert_eq!(stats.threads_run, 100);
/// let total: u64 = ctx.sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
/// assert_eq!(total, (0..100).sum::<usize>() as u64);
/// ```
#[derive(Debug)]
pub struct ParScheduler<C, P = PaperBlockHash> {
    config: SchedulerConfig,
    engine: BinEngine<ParSpec<C>, P>,
}

impl<C: Sync> ParScheduler<C> {
    /// Creates an empty parallel scheduler using the paper's binning
    /// policy derived from `config`.
    pub fn new(config: SchedulerConfig) -> Self {
        ParScheduler::with_policy(config, PaperBlockHash::from_config(&config))
    }
}

impl<C: Sync, P: BinPolicy> ParScheduler<C, P> {
    /// Creates an empty parallel scheduler binning with an explicit
    /// `policy`; `config` still supplies the hash-table size, tour,
    /// and steal policy.
    pub fn with_policy(config: SchedulerConfig, policy: P) -> Self {
        ParScheduler {
            engine: BinEngine::new(config.hash_size(), config.tour(), policy),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Creates and schedules a thread to call `func(ctx, arg1, arg2)`,
    /// binned by `hints`.
    pub fn fork(&mut self, func: ParThreadFn<C>, arg1: usize, arg2: usize, hints: Hints) {
        self.engine
            .insert_traced(ParSpec { func, arg1, arg2 }, hints, &mut memtrace::NullSink);
    }

    /// Number of threads currently scheduled.
    pub fn pending(&self) -> u64 {
        self.engine.pending()
    }

    /// Number of bins currently allocated.
    pub fn bins(&self) -> usize {
        self.engine.bins()
    }

    /// Distribution statistics over the current schedule.
    pub fn stats(&self) -> SchedulerStats {
        self.engine.stats()
    }

    /// Runs and consumes every scheduled thread on `workers` OS
    /// threads. The bin tour is partitioned contiguously across
    /// per-worker deques (balanced by thread count); idle workers
    /// steal per the configured
    /// [`steal_policy`](SchedulerConfig::steal_policy). Each bin is
    /// executed to completion by exactly one worker.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, or propagates a panic from a thread
    /// body.
    pub fn run(&mut self, ctx: &C, workers: usize) -> RunStats {
        self.run_report(ctx, workers).run
    }

    /// Like [`run`](ParScheduler::run), but returns the full
    /// [`ParRunReport`] with per-worker steal and execution counters.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, or propagates a panic from a thread
    /// body.
    pub fn run_report(&mut self, ctx: &C, workers: usize) -> ParRunReport {
        assert!(workers > 0, "need at least one worker");
        let policy = self.config.steal_policy();
        let mut stats = self.stats();
        let order = self.engine.tour_order();
        // Block coordinates per *tour position* at the coarsest (steal)
        // granularity, for victim scoring. A multi-level policy's bins
        // score as their coarsest-level group — working-set distance is
        // a last-level notion.
        let keys: Vec<[u64; MAX_DIMS]> =
            order.iter().map(|&id| self.engine.steal_key(id)).collect();
        // Full ancestor ladders per tour position, only materialized
        // for the policy that scores lowest-common-ancestor depth.
        let ladders: Vec<Vec<[u64; MAX_DIMS]>> = if policy == StealPolicy::TopologyAware {
            order
                .iter()
                .map(|&id| self.engine.steal_ladder(id))
                .collect()
        } else {
            Vec::new()
        };
        let bins = self.engine.bins_slice();

        // Contiguous partition of the tour, balanced by thread count:
        // worker w's segment ends once the cumulative thread count
        // reaches w+1 fair shares.
        let total = self.engine.pending();
        let queues: Vec<WorkerQueue> = (0..workers).map(|_| WorkerQueue::new()).collect();
        let obs = ParObs::default();
        // The observed schedule log opens with one partition hand-off
        // per worker that received a non-empty initial segment.
        let mut schedule = ScheduleLog::new(workers as u32 + 1);
        {
            let mut cum = 0u64;
            let mut w = 0usize;
            for (pos, &id) in order.iter().enumerate() {
                while w + 1 < workers && cum * workers as u64 >= (w as u64 + 1) * total {
                    w += 1;
                }
                queues[w]
                    .deque
                    .lock()
                    .expect("deque poisoned")
                    .push_back(pos as u32);
                cum += bins[id as usize].threads();
            }
            for (w, queue) in queues.iter().enumerate() {
                let depth = queue.deque.lock().expect("deque poisoned").len();
                if depth > 0 {
                    schedule.push(SchedEvent::Handoff {
                        from: 0,
                        to: w as u32 + 1,
                    });
                }
                if probe::enabled() {
                    obs.deque_depth.record(depth as u64);
                }
            }
        }

        let outcomes: Vec<(WorkerStats, Vec<SchedEvent>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let queues = &queues;
                    let order = &order;
                    let keys = &keys;
                    let ladders = &ladders;
                    let obs = &obs;
                    scope.spawn(move || {
                        worker_loop(me, queues, order, keys, ladders, bins, policy, ctx, obs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let per_worker: Vec<WorkerStats> = outcomes.iter().map(|(w, _)| *w).collect();
        // Per-worker event streams concatenated in worker order; each
        // stream is internally ordered, cross-worker order is modeled
        // by the final barrier (the scope join).
        for (_, events) in outcomes {
            schedule.events.extend(events);
        }
        schedule.push(SchedEvent::Barrier);

        let threads_run: u64 = per_worker.iter().map(|w| w.threads_executed).sum();
        let bins_visited: usize = per_worker.iter().map(|w| w.bins_executed).sum::<u64>() as usize;
        self.engine.clear();
        stats.set_workers(per_worker);
        let mut profile = probe::RunProfile::new();
        profile.push(obs.section());
        ParRunReport {
            policy,
            workers,
            run: RunStats {
                threads_run,
                bins_visited,
            },
            stats,
            profile,
            schedule,
        }
    }
}

/// One worker: drain the own deque front-to-back; once empty, steal
/// per `policy` or exit. Returns the worker's counters plus its
/// observed schedule events (drain-unit begin/end per tour position
/// executed, steal provenance per successful transfer).
#[allow(clippy::too_many_arguments)]
fn worker_loop<C: Sync>(
    me: usize,
    queues: &[WorkerQueue],
    order: &[BinId],
    keys: &[[u64; MAX_DIMS]],
    ladders: &[Vec<[u64; MAX_DIMS]>],
    bins: &[Bin<ParSpec<C>>],
    policy: StealPolicy,
    ctx: &C,
    obs: &ParObs,
) -> (WorkerStats, Vec<SchedEvent>) {
    let mut stats = WorkerStats::default();
    let mut events: Vec<SchedEvent> = Vec::new();
    let actor = me as u32 + 1;
    let mut rng = XorShift64::for_worker(me);
    loop {
        let next = queues[me].deque.lock().expect("deque poisoned").pop_front();
        if let Some(pos) = next {
            queues[me].current.store(pos as usize, Ordering::Relaxed);
            events.push(SchedEvent::DrainBegin { actor, unit: pos });
            let bin = &bins[order[pos as usize] as usize];
            let busy = Instant::now();
            for spec in bin.items() {
                (spec.func)(ctx, spec.arg1, spec.arg2);
            }
            let busy_ns = busy.elapsed().as_nanos() as u64;
            // Reuses the busy measurement rather than opening a probe
            // span, so no second clock read lands on the hot path.
            obs.bin_run_ns.record(busy_ns);
            stats.busy_ns += busy_ns;
            stats.bins_executed += 1;
            stats.threads_executed += bin.threads();
            events.push(SchedEvent::DrainEnd { actor, unit: pos });
            continue;
        }
        if policy == StealPolicy::None {
            return (stats, events);
        }
        let parked = Instant::now();
        let got = match policy {
            StealPolicy::None => unreachable!("handled above"),
            StealPolicy::Random => steal_random(me, queues, &mut rng, &mut stats, obs),
            StealPolicy::LocalityAware => steal_locality(me, queues, keys, &mut stats, obs),
            StealPolicy::TopologyAware => steal_topology(me, queues, ladders, &mut stats, obs),
        };
        stats.parked_ns += parked.elapsed().as_nanos() as u64;
        match got {
            Some((victim, units)) => events.push(SchedEvent::Steal {
                thief: actor,
                victim: victim as u32 + 1,
                units: u32::try_from(units).expect("steal size fits u32"),
            }),
            None => {
                // No victim has stealable work; the only remaining bins
                // are in flight on other workers and cannot move. Done.
                return (stats, events);
            }
        }
    }
}

/// Moves up to half of `victim`'s deque (back half, at least one
/// entry) onto the back of `me`'s deque. Returns the number of tour
/// positions moved (0 if the victim's deque was empty). Never holds
/// two deque locks at once, so steals cannot deadlock.
fn steal_half(queues: &[WorkerQueue], victim: usize, me: usize, obs: &ParObs) -> u64 {
    let (stolen, remainder) = {
        let mut dq = queues[victim].deque.lock().expect("deque poisoned");
        let len = dq.len();
        if len == 0 {
            return 0;
        }
        let take = (len / 2).max(1);
        (dq.split_off(len - take), dq.len())
    };
    let count = stolen.len() as u64;
    let depth = {
        let mut dq = queues[me].deque.lock().expect("deque poisoned");
        dq.extend(stolen);
        dq.len()
    };
    obs.half_steals.incr();
    obs.steal_size.record(count);
    obs.deque_depth.record(depth as u64);
    obs.deque_depth.record(remainder as u64);
    count
}

/// Random policy: visit every other worker once, starting from a
/// random rotation, and steal from the first with a non-empty deque.
/// Returns the victim and the number of tour positions moved.
fn steal_random(
    me: usize,
    queues: &[WorkerQueue],
    rng: &mut XorShift64,
    stats: &mut WorkerStats,
    obs: &ParObs,
) -> Option<(usize, u64)> {
    let n = queues.len();
    if n <= 1 {
        return None;
    }
    let start = (rng.next() as usize) % (n - 1);
    for i in 0..n - 1 {
        let victim = (me + 1 + (start + i) % (n - 1)) % n;
        stats.steals_attempted += 1;
        let moved = steal_half(queues, victim, me, obs);
        if moved > 0 {
            stats.steals_succeeded += 1;
            return Some((victim, moved));
        }
    }
    None
}

/// Locality-aware policy: score every victim by the Manhattan distance
/// (over block coordinates) between its cold-end bin and the bin it is
/// currently executing, and steal from the farthest — the victim that
/// loses the least locality by giving up its back half. Ties break
/// toward the larger backlog, then the lower worker index.
fn steal_locality(
    me: usize,
    queues: &[WorkerQueue],
    keys: &[[u64; MAX_DIMS]],
    stats: &mut WorkerStats,
    obs: &ParObs,
) -> Option<(usize, u64)> {
    loop {
        let mut best: Option<(u64, usize, usize)> = None; // (distance, backlog, victim)
        for (victim, queue) in queues.iter().enumerate() {
            if victim == me {
                continue;
            }
            let (back, front, backlog) = {
                let dq = queue.deque.lock().expect("deque poisoned");
                (dq.back().copied(), dq.front().copied(), dq.len())
            };
            let Some(back) = back else { continue };
            let current = queue.current.load(Ordering::Relaxed);
            // A victim that has not started yet anchors at its front.
            let anchor = if current == NO_BIN {
                front.expect("non-empty deque has a front") as usize
            } else {
                current
            };
            let distance = manhattan(keys[back as usize], keys[anchor]);
            if best.is_none_or(|(d, b, _)| (distance, backlog) > (d, b)) {
                best = Some((distance, backlog, victim));
            }
        }
        let (_, _, victim) = best?;
        stats.steals_attempted += 1;
        let moved = steal_half(queues, victim, me, obs);
        if moved > 0 {
            stats.steals_succeeded += 1;
            return Some((victim, moved));
        }
        // The chosen victim drained between scoring and stealing;
        // rescan (total work shrinks monotonically, so this ends).
    }
}

/// Topology-aware policy: score every victim by the
/// lowest-common-ancestor depth between its cold-end bin and the bin
/// the *thief* is (or was last) executing, and steal from the nearest —
/// the work that still shares the deepest level of the thief's warm
/// hierarchy. Ties break toward the larger backlog, then the lower
/// worker index. A thief that has not run anything yet scores every
/// victim at distance 0, so ties pick the deepest backlog.
fn steal_topology(
    me: usize,
    queues: &[WorkerQueue],
    ladders: &[Vec<[u64; MAX_DIMS]>],
    stats: &mut WorkerStats,
    obs: &ParObs,
) -> Option<(usize, u64)> {
    loop {
        let anchor = queues[me].current.load(Ordering::Relaxed);
        // (distance, backlog, victim); minimize distance, maximize
        // backlog, minimize index.
        let mut best: Option<(u64, usize, usize)> = None;
        for (victim, queue) in queues.iter().enumerate() {
            if victim == me {
                continue;
            }
            let (back, backlog) = {
                let dq = queue.deque.lock().expect("deque poisoned");
                (dq.back().copied(), dq.len())
            };
            let Some(back) = back else { continue };
            let distance = if anchor == NO_BIN {
                0
            } else {
                lca_distance(&ladders[back as usize], &ladders[anchor])
            };
            let better = match best {
                None => true,
                Some((d, b, _)) => distance < d || (distance == d && backlog > b),
            };
            if better {
                best = Some((distance, backlog, victim));
            }
        }
        let (distance, _, victim) = best?;
        stats.steals_attempted += 1;
        let moved = steal_half(queues, victim, me, obs);
        if moved > 0 {
            stats.steals_succeeded += 1;
            obs.steal_distance.record(distance);
            return Some((victim, moved));
        }
        // The chosen victim drained between scoring and stealing;
        // rescan (total work shrinks monotonically, so this ends).
    }
}

/// Depth of the lowest common ancestor of two bins over their ancestor
/// ladders: 0 when they are the same finest-level bin block, `d` when
/// level `d` is the first the two keys share, and the full ladder depth
/// when they share no level at all (different top-level subtrees).
#[inline]
fn lca_distance(a: &[[u64; MAX_DIMS]], b: &[[u64; MAX_DIMS]]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    for (level, (ka, kb)) in a.iter().zip(b.iter()).enumerate() {
        if ka == kb {
            return level as u64;
        }
    }
    a.len() as u64
}

/// Manhattan distance between two block-coordinate keys.
#[inline]
fn manhattan(a: [u64; MAX_DIMS], b: [u64; MAX_DIMS]) -> u64 {
    let mut sum = 0u64;
    for dim in 0..MAX_DIMS {
        sum = sum.saturating_add(a[dim].abs_diff(b[dim]));
    }
    sum
}

/// Deterministic per-worker PRNG (xorshift64*) for random victim
/// rotation; seeded from the worker index so runs are reproducible
/// modulo OS scheduling.
struct XorShift64(u64);

impl XorShift64 {
    fn for_worker(me: usize) -> Self {
        XorShift64((me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;
    use std::sync::atomic::AtomicU64;

    struct Counters {
        slots: Vec<AtomicU64>,
    }

    fn bump(ctx: &Counters, slot: usize, value: usize) {
        ctx.slots[slot].fetch_add(value as u64, Ordering::Relaxed);
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::builder().block_size(4096).build().unwrap()
    }

    fn config_with(policy: StealPolicy) -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(4096)
            .steal_policy(policy)
            .build()
            .unwrap()
    }

    fn counters(n: usize) -> Counters {
        Counters {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    const ALL_POLICIES: [StealPolicy; 4] = [
        StealPolicy::None,
        StealPolicy::Random,
        StealPolicy::LocalityAware,
        StealPolicy::TopologyAware,
    ];

    #[test]
    #[cfg_attr(
        miri,
        ignore = "12 scheduler runs x 1000 forks is too slow under the interpreter"
    )]
    fn every_thread_runs_exactly_once_in_parallel() {
        for policy in ALL_POLICIES {
            for workers in [1, 2, 4, 8] {
                let mut sched: ParScheduler<Counters> = ParScheduler::new(config_with(policy));
                for i in 0..1000usize {
                    sched.fork(
                        bump,
                        i % 10,
                        1,
                        Hints::one(Addr::new((i as u64 % 64) * 100_000)),
                    );
                }
                assert_eq!(sched.pending(), 1000);
                let ctx = counters(10);
                let stats = sched.run(&ctx, workers);
                assert_eq!(stats.threads_run, 1000, "workers = {workers} {policy}");
                let total: u64 = ctx.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                assert_eq!(total, 1000);
                assert_eq!(sched.pending(), 0);
            }
        }
    }

    #[test]
    fn single_worker_matches_sequential_semantics() {
        // With one worker, bins run in tour order just like the
        // sequential scheduler — under every steal policy, because a
        // lone worker has no victims.
        struct OrderLog {
            order: std::sync::Mutex<Vec<usize>>,
        }
        fn log_it(ctx: &OrderLog, i: usize, _j: usize) {
            ctx.order.lock().unwrap().push(i);
        }
        for policy in ALL_POLICIES {
            let mut sched: ParScheduler<OrderLog> = ParScheduler::new(config_with(policy));
            for i in 0..6usize {
                let addr = if i % 2 == 0 { 0u64 } else { 1 << 30 };
                sched.fork(log_it, i, 0, Hints::one(Addr::new(addr)));
            }
            let ctx = OrderLog {
                order: std::sync::Mutex::new(Vec::new()),
            };
            sched.run(&ctx, 1);
            assert_eq!(
                *ctx.order.lock().unwrap(),
                vec![0, 2, 4, 1, 3, 5],
                "{policy}"
            );
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "2400 cross-thread executions are too slow under the interpreter"
    )]
    fn bins_never_split_across_workers() {
        // Tag each thread with its bin; assert all threads of a bin saw
        // the same worker (thread id). Bins are the unit of transfer,
        // so this must hold even while stealing.
        struct BinWorkers {
            seen: Vec<std::sync::Mutex<Option<std::thread::ThreadId>>>,
            violations: AtomicU64,
        }
        fn check(ctx: &BinWorkers, bin: usize, _j: usize) {
            let me = std::thread::current().id();
            let mut slot = ctx.seen[bin].lock().unwrap();
            match *slot {
                None => *slot = Some(me),
                Some(owner) => {
                    if owner != me {
                        ctx.violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        for policy in ALL_POLICIES {
            let bins = 16usize;
            let mut sched: ParScheduler<BinWorkers> = ParScheduler::new(config_with(policy));
            for i in 0..800usize {
                let bin = i % bins;
                sched.fork(check, bin, 0, Hints::one(Addr::new(bin as u64 * 1_000_000)));
            }
            let ctx = BinWorkers {
                seen: (0..bins).map(|_| std::sync::Mutex::new(None)).collect(),
                violations: AtomicU64::new(0),
            };
            sched.run(&ctx, 4);
            assert_eq!(ctx.violations.load(Ordering::Relaxed), 0, "{policy}");
        }
    }

    #[test]
    fn more_workers_than_bins_is_fine() {
        let mut sched: ParScheduler<Counters> = ParScheduler::new(config());
        sched.fork(bump, 0, 5, Hints::none());
        let ctx = counters(1);
        let stats = sched.run(&ctx, 16);
        assert_eq!(stats.threads_run, 1);
        assert_eq!(ctx.slots[0].load(Ordering::Relaxed), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let mut sched: ParScheduler<Counters> = ParScheduler::new(config());
        let ctx = counters(1);
        let _ = sched.run(&ctx, 0);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "12 scheduler runs x 500 forks is too slow under the interpreter"
    )]
    fn report_counters_are_consistent() {
        for policy in ALL_POLICIES {
            for workers in [1, 2, 4, 8] {
                let mut sched: ParScheduler<Counters> = ParScheduler::new(config_with(policy));
                for i in 0..500usize {
                    sched.fork(
                        bump,
                        0,
                        1,
                        Hints::one(Addr::new((i as u64 % 32) * 1_000_000)),
                    );
                }
                let ctx = counters(1);
                let report = sched.run_report(&ctx, workers);
                assert_eq!(report.policy, policy);
                assert_eq!(report.workers, workers);
                assert_eq!(report.stats.workers().len(), workers);
                assert_eq!(report.run.threads_run, 500);
                let by_worker: u64 = report
                    .stats
                    .workers()
                    .iter()
                    .map(|w| w.threads_executed)
                    .sum();
                assert_eq!(by_worker, report.run.threads_run);
                let bins_by_worker: u64 =
                    report.stats.workers().iter().map(|w| w.bins_executed).sum();
                assert_eq!(bins_by_worker as usize, report.run.bins_visited);
                for w in report.stats.workers() {
                    assert!(
                        w.steals_succeeded <= w.steals_attempted,
                        "{policy} workers={workers}: {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_steals_under_none_policy() {
        let mut sched: ParScheduler<Counters> = ParScheduler::new(config_with(StealPolicy::None));
        for i in 0..400usize {
            sched.fork(
                bump,
                0,
                1,
                Hints::one(Addr::new((i as u64 % 16) * 1_000_000)),
            );
        }
        let ctx = counters(1);
        let report = sched.run_report(&ctx, 4);
        assert_eq!(report.stats.steals_attempted(), 0);
        assert_eq!(report.stats.steals_succeeded(), 0);
        assert_eq!(
            report
                .stats
                .workers()
                .iter()
                .map(|w| w.parked_ns)
                .sum::<u64>(),
            0,
            "None-policy workers never park to search for victims"
        );
    }

    #[test]
    fn idle_workers_attempt_steals_under_random_policy() {
        // One bin, four workers: three start empty and must each log
        // at least one steal attempt before exiting.
        let mut sched: ParScheduler<Counters> = ParScheduler::new(config_with(StealPolicy::Random));
        for _ in 0..50 {
            sched.fork(bump, 0, 1, Hints::none());
        }
        let ctx = counters(1);
        let report = sched.run_report(&ctx, 4);
        assert_eq!(report.run.threads_run, 50);
        assert!(report.stats.steals_attempted() >= 1, "{}", report.to_json());
    }

    #[test]
    fn report_json_shape() {
        let mut sched: ParScheduler<Counters> =
            ParScheduler::new(config_with(StealPolicy::LocalityAware));
        for i in 0..100usize {
            sched.fork(
                bump,
                0,
                1,
                Hints::one(Addr::new((i as u64 % 8) * 1_000_000)),
            );
        }
        let ctx = counters(1);
        let report = sched.run_report(&ctx, 2);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"policy\":\"locality-aware\""), "{json}");
        assert!(json.contains("\"workers\":2"), "{json}");
        assert!(json.contains("\"threads_run\":100"), "{json}");
        assert!(json.contains("\"per_worker\":[{\"worker\":0,"), "{json}");
        assert!(json.contains("\"worker\":1,"), "{json}");
        assert!(json.contains("\"makespan_ns\":"), "{json}");
        assert!(json.contains("\"busy_ns\":"), "{json}");
        assert!(json.contains("\"parked_ns\":"), "{json}");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "16 scheduler runs x 400 forks are too slow under the interpreter"
    )]
    fn observed_schedule_log_is_well_formed() {
        // Every drain unit (tour position) appears as exactly one
        // DrainBegin/DrainEnd pair, on whichever worker won it; steal
        // events match the success counters; the log ends in a barrier.
        use std::collections::BTreeMap;
        for policy in ALL_POLICIES {
            for workers in [1, 2, 4, 8] {
                let mut sched: ParScheduler<Counters> = ParScheduler::new(config_with(policy));
                for i in 0..400usize {
                    sched.fork(
                        bump,
                        0,
                        1,
                        Hints::one(Addr::new((i as u64 % 16) * 1_000_000)),
                    );
                }
                let ctx = counters(1);
                let report = sched.run_report(&ctx, workers);
                let log = &report.schedule;
                assert_eq!(log.actors, workers as u32 + 1, "{policy}/{workers}");
                assert_eq!(log.events.last(), Some(&SchedEvent::Barrier));
                let mut begun: BTreeMap<u32, u64> = BTreeMap::new();
                let mut ended: BTreeMap<u32, u64> = BTreeMap::new();
                let mut steals = 0u64;
                for &event in &log.events {
                    match event {
                        SchedEvent::DrainBegin { actor, unit } => {
                            assert!(actor >= 1 && actor <= workers as u32);
                            *begun.entry(unit).or_default() += 1;
                        }
                        SchedEvent::DrainEnd { unit, .. } => {
                            *ended.entry(unit).or_default() += 1;
                        }
                        SchedEvent::Steal {
                            thief,
                            victim,
                            units,
                        } => {
                            assert_ne!(thief, victim);
                            assert!(units > 0);
                            steals += 1;
                        }
                        SchedEvent::Handoff { from, to } => {
                            assert_eq!(from, 0);
                            assert!(to >= 1 && to <= workers as u32);
                        }
                        _ => {}
                    }
                }
                assert_eq!(begun.len(), 16, "{policy}/{workers}: all 16 bins drained");
                assert!(begun.values().all(|&n| n == 1), "{policy}/{workers}");
                assert_eq!(begun, ended, "{policy}/{workers}");
                assert_eq!(
                    steals,
                    report.stats.steals_succeeded(),
                    "{policy}/{workers}"
                );
            }
        }
    }

    #[test]
    fn lca_distance_walks_the_ladder() {
        let a = vec![[1, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0]];
        let b = vec![[2, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0]];
        let c = vec![[9, 0, 0, 0], [4, 0, 0, 0], [0, 0, 0, 0]];
        let d = vec![[7, 0, 0, 0], [3, 0, 0, 0], [1, 0, 0, 0]];
        assert_eq!(lca_distance(&a, &a), 0, "same fine bin");
        assert_eq!(lca_distance(&a, &b), 1, "share the mid level");
        assert_eq!(lca_distance(&a, &c), 2, "share only the root");
        assert_eq!(lca_distance(&a, &d), 3, "different subtrees");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "4 scheduler runs x 600 forks are too slow under the interpreter"
    )]
    fn topology_aware_steals_run_everything_with_deep_policies() {
        use crate::policy::TopologyPolicy;
        let policy = TopologyPolicy::uniform(&[1 << 12, 1 << 16, 1 << 20], false).unwrap();
        for workers in [1, 2, 4, 8] {
            let mut sched: ParScheduler<Counters, TopologyPolicy> =
                ParScheduler::with_policy(config_with(StealPolicy::TopologyAware), policy);
            for i in 0..600usize {
                sched.fork(
                    bump,
                    i % 10,
                    1,
                    Hints::one(Addr::new((i as u64 % 48) * 100_000)),
                );
            }
            let ctx = counters(10);
            let report = sched.run_report(&ctx, workers);
            assert_eq!(report.run.threads_run, 600, "workers = {workers}");
            assert_eq!(report.policy, StealPolicy::TopologyAware);
            let total: u64 = ctx.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
            assert_eq!(total, 600);
        }
    }

    #[test]
    fn contiguous_partition_balances_by_thread_count() {
        // 4 equal bins over 2 workers with stealing off: each worker
        // executes exactly 2 bins / half the threads.
        let mut sched: ParScheduler<Counters> = ParScheduler::new(config_with(StealPolicy::None));
        for bin in 0..4u64 {
            for _ in 0..25 {
                sched.fork(bump, 0, 1, Hints::one(Addr::new(bin * 1_000_000)));
            }
        }
        let ctx = counters(1);
        let report = sched.run_report(&ctx, 2);
        for w in report.stats.workers() {
            assert_eq!(w.bins_executed, 2, "{}", report.to_json());
            assert_eq!(w.threads_executed, 50, "{}", report.to_json());
        }
    }
}

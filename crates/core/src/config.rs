//! Scheduler configuration (the paper's `th_init`).

use crate::hint::MAX_DIMS;
use crate::policy::BinPolicy as _;
use crate::{Hints, Tour};
use std::error::Error;
use std::fmt;

/// Error returned when a [`SchedulerConfig`] is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scheduler configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// How idle [`ParScheduler`](crate::ParScheduler) workers acquire more
/// bins once their own deque drains.
///
/// The initial schedule partitions the bin tour contiguously across
/// workers, so each worker starts with a contiguous stretch of
/// scheduling space. Stealing trades that contiguity for load balance;
/// the policy controls *how much* locality each steal gives up:
///
/// - [`None`](StealPolicy::None): never steal. Workers exit when their
///   own deque drains; load imbalance translates directly into idle
///   cores, but every bin runs on the worker whose tour segment it was
///   assigned to.
/// - [`Random`](StealPolicy::Random): steal from a uniformly random
///   victim, the classic Cilk/ABP discipline. Balances load but is
///   oblivious to scheduling-space distance.
/// - [`LocalityAware`](StealPolicy::LocalityAware): prefer the victim
///   whose *cold end* (the back of its deque — the work it will reach
///   last) is farthest in scheduling space from the bin that victim is
///   currently executing. Stolen bins are the ones least likely to
///   share cache-sized working set with the victim's near-term work,
///   so the steal costs the victim the least locality.
/// - [`TopologyAware`](StealPolicy::TopologyAware): rank victims by the
///   machine-hierarchy distance between their cold end and the bin the
///   *thief* just finished — the depth of the lowest common ancestor in
///   the policy's ladder — and steal from the nearest subtree first, so
///   stolen work shares as much of the thief's warm hierarchy as
///   possible. Requires a multi-level policy to differ from flat
///   distance-0 ties.
///
/// All stealing policies take half the victim's deque from the back
/// (cold end), preserving tour order within each fragment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StealPolicy {
    /// Never steal; static contiguous partition only.
    None,
    /// Steal from a uniformly random victim (seeded deterministically
    /// per worker).
    Random,
    /// Steal from the victim whose cold end is farthest (Manhattan
    /// distance over block coordinates) from its current bin.
    #[default]
    LocalityAware,
    /// Steal from the victim whose cold end shares the deepest ancestor
    /// (lowest-common-ancestor depth over the policy's topology ladder)
    /// with the thief's last-run bin.
    TopologyAware,
}

impl fmt::Display for StealPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StealPolicy::None => "none",
            StealPolicy::Random => "random",
            StealPolicy::LocalityAware => "locality-aware",
            StealPolicy::TopologyAware => "topology-aware",
        })
    }
}

/// When the *online* engine ([`Scheduler::enable_online`](crate::Scheduler::enable_online))
/// frees drained-and-empty bin records, bounding the bin table for
/// long-running serving workloads.
///
/// The paper's package never frees a bin record: for a batch run the
/// table is recycled wholesale between phases, so leaking records is
/// invisible. A serving process that streams requests forever has no
/// such phase boundary — without eviction the bin table (and, for
/// [`UniqueBin`](crate::UniqueBin), the key space) grows monotonically
/// for the life of the process.
///
/// Eviction is **order-neutral and insert-driven**:
///
/// * Only bins that have been drained and are currently empty are ever
///   freed. A live (non-empty) bin is never touched, so the tour order
///   of live bins is exactly what it would have been without eviction.
/// * Candidates are only reaped during a fork (insert). A run whose
///   arrivals all precede its drains — the t=0 batch-equivalence case —
///   therefore never evicts at all.
/// * An evicted key that re-arrives allocates a fresh bin record and
///   queues at the *back* of the ready order — indistinguishable from a
///   refilled bin, which also re-queues at the back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Never free bin records (the paper's behaviour; the default).
    #[default]
    Off,
    /// Free a drained-and-empty bin record once it has sat idle for
    /// `max_idle_drains` drain grants without being refilled. Bounds
    /// idle-record *lifetime*; table size then tracks the working set.
    IdleAge {
        /// Drain grants an empty record may outlive before it is freed
        /// (≥ 1).
        max_idle_drains: u64,
    },
    /// Cap the number of live bin records: whenever an insert grows the
    /// table past `max_records`, the least-recently-drained empty
    /// records are freed until the cap holds (or no empty record
    /// remains — non-empty bins are never evicted, so the cap is only
    /// guaranteed when it exceeds the peak number of concurrently
    /// non-empty bins, e.g. the admission queue bound).
    LruCap {
        /// Maximum live bin records the table should hold (≥ 1).
        max_records: u64,
    },
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictionPolicy::Off => f.write_str("off"),
            EvictionPolicy::IdleAge { max_idle_drains } => {
                write!(f, "idle-age({max_idle_drains})")
            }
            EvictionPolicy::LruCap { max_records } => write!(f, "lru-cap({max_records})"),
        }
    }
}

/// Configuration of a locality [`Scheduler`](crate::Scheduler):
/// block sizes, hash-table size, symmetric-hint folding, and bin tour.
///
/// The paper's `th_init(blocksize, hashsize)` sets a single block size
/// used in every dimension; [`SchedulerConfigBuilder::block_size`] does
/// the same, and [`block_sizes`](SchedulerConfigBuilder::block_sizes)
/// additionally allows per-dimension sizes. Block sizes must be powers
/// of two because the default hash "simply performs a shift and a mask
/// operation on each hint" (§3.2) — the shift is `log2(block size)`.
///
/// # Examples
///
/// ```
/// use locality_sched::SchedulerConfig;
///
/// // Paper default for a 2 MB L2 and 2-D hints: each block dimension is
/// // half the cache, so the dimensions sum to the cache size.
/// let config = SchedulerConfig::for_cache(2 << 20, 2)?;
/// assert_eq!(config.block_size(0), 1 << 20);
/// assert_eq!(config.block_size(1), 1 << 20);
/// # Ok::<(), locality_sched::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    block_sizes: [u64; MAX_DIMS],
    shifts: [u32; MAX_DIMS],
    hash_size: usize,
    symmetric: bool,
    tour: Tour,
    steal: StealPolicy,
    eviction: EvictionPolicy,
}

/// Builder for [`SchedulerConfig`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfigBuilder {
    block_sizes: [u64; MAX_DIMS],
    hash_size: usize,
    symmetric: bool,
    tour: Tour,
    steal: StealPolicy,
    eviction: EvictionPolicy,
}

/// Default block dimension: one third of a 2 MB L2, rounded down to a
/// power of two — the paper's 3-D default rule applied to its larger
/// test machine. Override with
/// [`SchedulerConfig::for_cache`] for a specific machine.
const DEFAULT_BLOCK: u64 = 512 << 10;

/// Default hash-table size per dimension.
const DEFAULT_HASH_SIZE: usize = 16;

impl Default for SchedulerConfigBuilder {
    fn default() -> Self {
        SchedulerConfigBuilder {
            block_sizes: [DEFAULT_BLOCK; MAX_DIMS],
            hash_size: DEFAULT_HASH_SIZE,
            symmetric: false,
            tour: Tour::AllocationOrder,
            steal: StealPolicy::default(),
            eviction: EvictionPolicy::default(),
        }
    }
}

impl SchedulerConfigBuilder {
    /// Sets the same block size (bytes) for every dimension, like the
    /// paper's `th_init(blocksize, …)`. Must be a power of two.
    pub fn block_size(mut self, bytes: u64) -> Self {
        self.block_sizes = [bytes; MAX_DIMS];
        self
    }

    /// Sets per-dimension block sizes (bytes); each must be a power of
    /// two.
    pub fn block_sizes(mut self, bytes: [u64; MAX_DIMS]) -> Self {
        self.block_sizes = bytes;
        self
    }

    /// Sets the hash-table size per dimension (the table has
    /// `hash_size⁴` buckets). Must be a power of two, at most 32.
    pub fn hash_size(mut self, size: usize) -> Self {
        self.hash_size = size;
        self
    }

    /// Enables symmetric-hint folding: hints `(hᵢ, hⱼ)` and `(hⱼ, hᵢ)`
    /// land in the same bin "since they reference the same pieces of
    /// data", halving the bin count (§2.3).
    pub fn symmetric(mut self, symmetric: bool) -> Self {
        self.symmetric = symmetric;
        self
    }

    /// Sets the bin traversal order (default:
    /// [`Tour::AllocationOrder`], the paper's implementation).
    pub fn tour(mut self, tour: Tour) -> Self {
        self.tour = tour;
        self
    }

    /// Sets the work-stealing policy for
    /// [`ParScheduler`](crate::ParScheduler) (default:
    /// [`StealPolicy::LocalityAware`]). The sequential
    /// [`Scheduler`](crate::Scheduler) ignores this knob.
    pub fn steal_policy(mut self, steal: StealPolicy) -> Self {
        self.steal = steal;
        self
    }

    /// Sets the bin-record eviction policy for the *online* engine
    /// (default: [`EvictionPolicy::Off`], the paper's never-free
    /// behaviour). Batch runs ignore this knob: the table is recycled
    /// wholesale between phases, so there is nothing to reap.
    pub fn eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if any block size or the hash size is zero or
    /// not a power of two.
    pub fn build(self) -> Result<SchedulerConfig, ConfigError> {
        let mut shifts = [0u32; MAX_DIMS];
        for (dim, &size) in self.block_sizes.iter().enumerate() {
            if size == 0 || !size.is_power_of_two() {
                return Err(ConfigError::new(format!(
                    "block size {size} in dimension {dim} is not a nonzero power of two"
                )));
            }
            shifts[dim] = size.trailing_zeros();
        }
        if self.hash_size == 0 || !self.hash_size.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "hash size {} is not a nonzero power of two",
                self.hash_size
            )));
        }
        if self.hash_size > 32 {
            return Err(ConfigError::new(format!(
                "hash size {} exceeds 32 (the bucket array is hash_size^{MAX_DIMS})",
                self.hash_size
            )));
        }
        match self.eviction {
            EvictionPolicy::Off => {}
            EvictionPolicy::IdleAge { max_idle_drains: 0 } => {
                return Err(ConfigError::new(
                    "idle-age eviction requires max_idle_drains >= 1",
                ));
            }
            EvictionPolicy::LruCap { max_records: 0 } => {
                return Err(ConfigError::new(
                    "lru-cap eviction requires max_records >= 1",
                ));
            }
            EvictionPolicy::IdleAge { .. } | EvictionPolicy::LruCap { .. } => {}
        }
        Ok(SchedulerConfig {
            block_sizes: self.block_sizes,
            shifts,
            hash_size: self.hash_size,
            symmetric: self.symmetric,
            tour: self.tour,
            steal: self.steal,
            eviction: self.eviction,
        })
    }
}

impl SchedulerConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> SchedulerConfigBuilder {
        SchedulerConfigBuilder::default()
    }

    /// The paper's default rule: block dimensions sized so that `dims`
    /// of them sum to `cache_size` (each rounded down to a power of
    /// two). "The default dimension sizes of the block are set such
    /// that their sum are the same as the second-level cache size"
    /// (§3.2).
    ///
    /// # Errors
    ///
    /// Returns an error if `dims` is zero or exceeds
    /// [`MAX_DIMS`](crate::Hints), or if `cache_size / dims` rounds to
    /// zero.
    pub fn for_cache(cache_size: u64, dims: usize) -> Result<Self, ConfigError> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(ConfigError::new(format!(
                "hint dimensionality {dims} out of range 1..={MAX_DIMS}"
            )));
        }
        let per_dim = cache_size / dims as u64;
        if per_dim == 0 {
            return Err(ConfigError::new(format!(
                "cache size {cache_size} too small for {dims} dimensions"
            )));
        }
        let block = prev_power_of_two(per_dim);
        SchedulerConfig::builder().block_size(block).build()
    }

    /// Block size in bytes for dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= MAX_DIMS`.
    pub fn block_size(&self, dim: usize) -> u64 {
        self.block_sizes[dim]
    }

    /// Hash-table size per dimension.
    pub fn hash_size(&self) -> usize {
        self.hash_size
    }

    /// Whether symmetric-hint folding is enabled.
    pub fn symmetric(&self) -> bool {
        self.symmetric
    }

    /// The configured bin tour.
    pub fn tour(&self) -> Tour {
        self.tour
    }

    /// The configured work-stealing policy.
    pub fn steal_policy(&self) -> StealPolicy {
        self.steal
    }

    /// The configured online bin-record eviction policy.
    pub fn eviction(&self) -> EvictionPolicy {
        self.eviction
    }

    /// Per-dimension shifts (`log2(block size)`), for policy
    /// construction.
    pub(crate) fn shifts(&self) -> [u32; MAX_DIMS] {
        self.shifts
    }

    /// Maps hints to block coordinates in the scheduling space: each
    /// hint address divided by its dimension's block size, with
    /// symmetric folding applied if configured.
    ///
    /// Delegates to [`PaperBlockHash`](crate::PaperBlockHash), the
    /// single owner of the paper's hints → bin-key mapping.
    #[inline]
    pub fn block_coords(&self, hints: Hints) -> [u64; MAX_DIMS] {
        crate::policy::PaperBlockHash::from_config(self).bin_key(hints)
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::builder()
            .build()
            .expect("default configuration is valid")
    }
}

impl fmt::Display for SchedulerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blocks [{}, {}, {}, {}] hash {}^4{}{}",
            self.block_sizes[0],
            self.block_sizes[1],
            self.block_sizes[2],
            self.block_sizes[3],
            self.hash_size,
            if self.symmetric { " symmetric" } else { "" },
            match self.tour {
                Tour::AllocationOrder => "",
                _ => " (custom tour)",
            }
        )
    }
}

fn prev_power_of_two(x: u64) -> u64 {
    debug_assert!(x > 0);
    1 << (63 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    #[test]
    fn builder_defaults_are_valid() {
        let c = SchedulerConfig::default();
        assert_eq!(c.block_size(0), 512 << 10);
        assert_eq!(c.hash_size(), 16);
        assert!(!c.symmetric());
        assert_eq!(c.tour(), Tour::AllocationOrder);
    }

    #[test]
    fn for_cache_follows_paper_rule() {
        // 2 MB cache, 2-D: each dim 1 MB (dims sum to cache size).
        let c = SchedulerConfig::for_cache(2 << 20, 2).unwrap();
        assert_eq!(c.block_size(0), 1 << 20);
        // 2 MB cache, 3-D: 2M/3 = 699050 -> 512 KiB.
        let c = SchedulerConfig::for_cache(2 << 20, 3).unwrap();
        assert_eq!(c.block_size(0), 512 << 10);
    }

    #[test]
    fn for_cache_rejects_bad_dims() {
        assert!(SchedulerConfig::for_cache(1 << 20, 0).is_err());
        assert!(
            SchedulerConfig::for_cache(1 << 20, 4).is_ok(),
            "4-D is supported"
        );
        assert!(SchedulerConfig::for_cache(1 << 20, 5).is_err());
        assert!(SchedulerConfig::for_cache(2, 3).is_err());
    }

    #[test]
    fn build_rejects_non_power_of_two() {
        assert!(SchedulerConfig::builder().block_size(3000).build().is_err());
        assert!(SchedulerConfig::builder().block_size(0).build().is_err());
        assert!(SchedulerConfig::builder().hash_size(12).build().is_err());
        assert!(SchedulerConfig::builder().hash_size(0).build().is_err());
        assert!(SchedulerConfig::builder().hash_size(64).build().is_err());
        assert!(SchedulerConfig::builder().hash_size(32).build().is_ok());
    }

    #[test]
    fn block_coords_shift_by_block_size() {
        let c = SchedulerConfig::builder().block_size(1024).build().unwrap();
        let coords = c.block_coords(Hints::two(Addr::new(4096), Addr::new(1023)));
        assert_eq!(coords, [4, 0, 0, 0]);
    }

    #[test]
    fn per_dimension_block_sizes() {
        let c = SchedulerConfig::builder()
            .block_sizes([1024, 2048, 4096, 8192])
            .build()
            .unwrap();
        let coords = c.block_coords(Hints::four(
            Addr::new(4096),
            Addr::new(4096),
            Addr::new(4096),
            Addr::new(16384),
        ));
        assert_eq!(coords, [4, 2, 1, 2]);
    }

    #[test]
    fn symmetric_folding_canonicalizes() {
        let c = SchedulerConfig::builder()
            .block_size(1024)
            .symmetric(true)
            .build()
            .unwrap();
        let ab = c.block_coords(Hints::two(Addr::new(1024), Addr::new(2048)));
        let ba = c.block_coords(Hints::two(Addr::new(2048), Addr::new(1024)));
        assert_eq!(ab, ba);
        assert_eq!(ab, [2, 1, 0, 0]);
    }

    #[test]
    fn asymmetric_keeps_order() {
        let c = SchedulerConfig::builder().block_size(1024).build().unwrap();
        let ab = c.block_coords(Hints::two(Addr::new(1024), Addr::new(2048)));
        let ba = c.block_coords(Hints::two(Addr::new(2048), Addr::new(1024)));
        assert_ne!(ab, ba);
    }

    #[test]
    fn steal_policy_knob_round_trips() {
        assert_eq!(
            SchedulerConfig::default().steal_policy(),
            StealPolicy::LocalityAware
        );
        for policy in [
            StealPolicy::None,
            StealPolicy::Random,
            StealPolicy::LocalityAware,
            StealPolicy::TopologyAware,
        ] {
            let c = SchedulerConfig::builder()
                .steal_policy(policy)
                .build()
                .unwrap();
            assert_eq!(c.steal_policy(), policy);
        }
        assert_eq!(StealPolicy::None.to_string(), "none");
        assert_eq!(StealPolicy::Random.to_string(), "random");
        assert_eq!(StealPolicy::LocalityAware.to_string(), "locality-aware");
        assert_eq!(StealPolicy::TopologyAware.to_string(), "topology-aware");
    }

    #[test]
    fn eviction_knob_round_trips_and_validates() {
        assert_eq!(SchedulerConfig::default().eviction(), EvictionPolicy::Off);
        for policy in [
            EvictionPolicy::Off,
            EvictionPolicy::IdleAge { max_idle_drains: 4 },
            EvictionPolicy::LruCap { max_records: 128 },
        ] {
            let c = SchedulerConfig::builder().eviction(policy).build().unwrap();
            assert_eq!(c.eviction(), policy);
        }
        assert!(SchedulerConfig::builder()
            .eviction(EvictionPolicy::IdleAge { max_idle_drains: 0 })
            .build()
            .is_err());
        assert!(SchedulerConfig::builder()
            .eviction(EvictionPolicy::LruCap { max_records: 0 })
            .build()
            .is_err());
        assert_eq!(EvictionPolicy::Off.to_string(), "off");
        assert_eq!(
            EvictionPolicy::IdleAge { max_idle_drains: 4 }.to_string(),
            "idle-age(4)"
        );
        assert_eq!(
            EvictionPolicy::LruCap { max_records: 128 }.to_string(),
            "lru-cap(128)"
        );
    }

    #[test]
    fn error_display_is_meaningful() {
        let err = SchedulerConfig::builder()
            .block_size(3)
            .build()
            .unwrap_err();
        let s = err.to_string();
        assert!(s.contains("power of two"), "{s}");
        assert!(s.starts_with("invalid scheduler configuration"), "{s}");
    }
}

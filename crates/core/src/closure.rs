//! An ergonomic closure-based front end to the locality scheduler.

use crate::stats::{RunStats, SchedulerStats};
use crate::table::BinTable;
use crate::{Hints, SchedulerConfig};

/// A locality scheduler whose threads are boxed closures.
///
/// The function-pointer [`Scheduler`](crate::Scheduler) mirrors the
/// paper's three-word thread records and is what the benchmarks use;
/// `ClosureScheduler` trades one heap allocation per thread for the
/// convenience of captures, which suits coarse-grained uses where
/// thread bodies are not a single hot loop.
///
/// Because closures are `FnOnce`, the paper's `th_run(keep)`
/// re-execution mode is not available: [`run`](ClosureScheduler::run)
/// always consumes the schedule.
///
/// # Examples
///
/// ```
/// use locality_sched::{Addr, ClosureScheduler, Hints, SchedulerConfig};
/// use std::cell::RefCell;
///
/// let results = RefCell::new(Vec::new());
/// let mut sched = ClosureScheduler::new(SchedulerConfig::default());
/// for i in 0..3usize {
///     let results = &results;
///     sched.fork(Hints::one(Addr::new(i as u64 * 4096)), move || {
///         results.borrow_mut().push(i);
///     });
/// }
/// let stats = sched.run();
/// assert_eq!(stats.threads_run, 3);
/// drop(sched); // release the closures' borrow
/// assert_eq!(results.into_inner().len(), 3);
/// ```
pub struct ClosureScheduler<'scope> {
    config: SchedulerConfig,
    table: BinTable,
    bins: Vec<Vec<Box<dyn FnOnce() + 'scope>>>,
    threads: u64,
}

impl<'scope> ClosureScheduler<'scope> {
    /// Creates an empty closure scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        ClosureScheduler {
            table: BinTable::new(config.hash_size()),
            bins: Vec::new(),
            threads: 0,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Creates and schedules a thread running `body`, binned by
    /// `hints`.
    pub fn fork(&mut self, hints: Hints, body: impl FnOnce() + 'scope) {
        let key = self.config.block_coords(hints);
        let (id, created) = self.table.lookup_or_insert(key);
        if created {
            self.bins.push(Vec::new());
        }
        self.bins[id as usize].push(Box::new(body));
        self.threads += 1;
    }

    /// Number of threads currently scheduled.
    pub fn pending(&self) -> u64 {
        self.threads
    }

    /// Number of bins currently allocated.
    pub fn bins(&self) -> usize {
        self.table.len()
    }

    /// Distribution statistics over the current schedule.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats::from_bin_counts(self.bins.iter().map(|b| b.len() as u64).collect())
    }

    /// Runs and consumes every scheduled thread in tour order.
    pub fn run(&mut self) -> RunStats {
        let order = self.config.tour().order(self.table.keys());
        let mut threads_run = 0u64;
        let mut bins_visited = 0usize;
        for id in order {
            let bin = std::mem::take(&mut self.bins[id as usize]);
            if bin.is_empty() {
                continue;
            }
            bins_visited += 1;
            threads_run += bin.len() as u64;
            for body in bin {
                body();
            }
        }
        self.table.clear();
        self.bins.clear();
        self.threads = 0;
        RunStats {
            threads_run,
            bins_visited,
        }
    }
}

impl std::fmt::Debug for ClosureScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosureScheduler")
            .field("config", &self.config)
            .field("threads", &self.threads)
            .field("bins", &self.table.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;
    use std::cell::RefCell;

    fn config(block: u64) -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(block)
            .build()
            .unwrap()
    }

    #[test]
    fn closures_run_once_each() {
        let log = RefCell::new(Vec::new());
        let mut sched = ClosureScheduler::new(config(1024));
        for i in 0..25usize {
            let log = &log;
            sched.fork(Hints::one(Addr::new(i as u64 * 500)), move || {
                log.borrow_mut().push(i);
            });
        }
        assert_eq!(sched.pending(), 25);
        let stats = sched.run();
        assert_eq!(stats.threads_run, 25);
        assert_eq!(sched.pending(), 0);
        drop(sched); // release the closures' borrow of `log`
        let mut seen = log.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn binning_matches_fn_pointer_scheduler() {
        let mut sched = ClosureScheduler::new(config(1024));
        // Two hints in the same 1024-byte block, one in another.
        sched.fork(Hints::one(Addr::new(0)), || {});
        sched.fork(Hints::one(Addr::new(1000)), || {});
        sched.fork(Hints::one(Addr::new(5000)), || {});
        assert_eq!(sched.bins(), 2);
        let stats = sched.stats();
        assert_eq!(stats.max_threads_per_bin(), 2);
    }

    #[test]
    fn same_bin_runs_adjacent() {
        let log = RefCell::new(Vec::new());
        let mut sched = ClosureScheduler::new(config(1024));
        for i in 0..6usize {
            let log = &log;
            // Even i -> block 0, odd i -> far block.
            let addr = if i % 2 == 0 { 0 } else { 1 << 24 };
            sched.fork(Hints::one(Addr::new(addr)), move || {
                log.borrow_mut().push(i);
            });
        }
        sched.run();
        drop(sched); // release the closures' borrow of `log`
        let order = log.into_inner();
        assert_eq!(order, vec![0, 2, 4, 1, 3, 5]);
    }

    #[test]
    fn empty_run_is_noop() {
        let mut sched = ClosureScheduler::new(SchedulerConfig::default());
        let stats = sched.run();
        assert_eq!(stats.threads_run, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let sched = ClosureScheduler::new(SchedulerConfig::default());
        assert!(format!("{sched:?}").contains("ClosureScheduler"));
    }
}

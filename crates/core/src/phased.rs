//! Phase-ordered locality scheduling — the paper's dependency future
//! work (§6).
//!
//! "The thread package supports only independent, run-to-completion
//! threads. … It would not be convenient to program algorithms that
//! have complex dependencies. Methods to specify dependencies and ways
//! to implement them efficiently remain to be demonstrated."
//!
//! [`PhasedScheduler`] demonstrates the simplest useful dependence
//! discipline: *barrier phases*. Every thread belongs to a phase;
//! phases execute in ascending order with an implicit barrier between
//! them, and within a phase threads are locality-scheduled exactly as
//! in the flat [`Scheduler`]. This covers the dominant dependence
//! shape of the paper's own benchmarks — iteration `t+1` of a solver
//! depends on iteration `t` — without per-thread dependence edges, and
//! it composes with every hint/tour/block configuration.

use crate::policy::{BinPolicy, PaperBlockHash};
use crate::stats::{RunStats, SchedulerStats};
use crate::{Hints, RunMode, Scheduler, SchedulerConfig, ThreadFn};

/// A locality scheduler with barrier-ordered phases.
///
/// # Examples
///
/// An iterative solver forks all iterations up front; the phase
/// barrier keeps iteration order while the scheduler still groups each
/// phase's threads by data block:
///
/// ```
/// use locality_sched::{Hints, PhasedScheduler, RunMode, SchedulerConfig};
///
/// fn body(log: &mut Vec<(u32, usize)>, col: usize, phase: usize) {
///     log.push((phase as u32, col));
/// }
///
/// let mut sched = PhasedScheduler::new(SchedulerConfig::default());
/// for phase in 0..3u32 {
///     for col in 0..4usize {
///         let addr = 0x1000_0000 + col as u64 * 8192;
///         sched.fork(phase, body, col, phase as usize, Hints::one(addr.into()));
///     }
/// }
/// let mut log = Vec::new();
/// let stats = sched.run(&mut log, RunMode::Consume);
/// assert_eq!(stats.threads_run, 12);
/// // All of phase 0 precedes all of phase 1, and so on.
/// let phases: Vec<u32> = log.iter().map(|&(p, _)| p).collect();
/// assert!(phases.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Clone, Debug)]
pub struct PhasedScheduler<C, P = PaperBlockHash> {
    config: SchedulerConfig,
    policy: P,
    /// Per-phase schedulers, sparse in phase number.
    phases: Vec<(u32, Scheduler<C, P>)>,
    threads: u64,
}

impl<C> PhasedScheduler<C> {
    /// Creates an empty phased scheduler; every phase inherits
    /// `config`.
    pub fn new(config: SchedulerConfig) -> Self {
        PhasedScheduler::with_policy(config, PaperBlockHash::from_config(&config))
    }
}

impl<C, P: BinPolicy> PhasedScheduler<C, P> {
    /// Creates an empty phased scheduler; every phase inherits
    /// `config` and bins with a clone of `policy`.
    pub fn with_policy(config: SchedulerConfig, policy: P) -> Self {
        PhasedScheduler {
            config,
            policy,
            phases: Vec::new(),
            threads: 0,
        }
    }

    /// The configuration used by every phase.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Creates and schedules a thread in `phase`. Threads of phase
    /// `p` run strictly before any thread of phase `p + 1`.
    pub fn fork(&mut self, phase: u32, func: ThreadFn<C>, arg1: usize, arg2: usize, hints: Hints) {
        let scheduler = match self.phases.binary_search_by_key(&phase, |&(p, _)| p) {
            Ok(pos) => &mut self.phases[pos].1,
            Err(pos) => {
                let sched = Scheduler::with_policy(self.config, self.policy.clone());
                self.phases.insert(pos, (phase, sched));
                &mut self.phases[pos].1
            }
        };
        scheduler.fork(func, arg1, arg2, hints);
        self.threads += 1;
    }

    /// Number of threads currently scheduled across all phases.
    pub fn pending(&self) -> u64 {
        self.threads
    }

    /// Number of non-empty phases.
    pub fn phases(&self) -> usize {
        self.phases.len()
    }

    /// Distribution statistics for one phase, if it exists.
    pub fn phase_stats(&self, phase: u32) -> Option<SchedulerStats> {
        self.phases
            .binary_search_by_key(&phase, |&(p, _)| p)
            .ok()
            .map(|pos| self.phases[pos].1.stats())
    }

    /// Runs every phase in ascending order, draining each phase
    /// completely (the barrier) before the next begins.
    pub fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        let mut total = RunStats::default();
        for (_phase, scheduler) in &mut self.phases {
            let stats = scheduler.run(ctx, mode);
            total.threads_run += stats.threads_run;
            total.bins_visited += stats.bins_visited;
        }
        if mode == RunMode::Consume {
            self.phases.clear();
            self.threads = 0;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    type Log = Vec<(usize, usize)>;

    fn record(log: &mut Log, a: usize, b: usize) {
        log.push((a, b));
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::builder().block_size(4096).build().unwrap()
    }

    #[test]
    fn phases_run_in_order_with_barriers() {
        let mut sched: PhasedScheduler<Log> = PhasedScheduler::new(config());
        // Fork phases interleaved and out of order.
        for col in 0..8 {
            sched.fork(
                2,
                record,
                2,
                col,
                Hints::one(Addr::new(col as u64 * 100_000)),
            );
            sched.fork(
                0,
                record,
                0,
                col,
                Hints::one(Addr::new(col as u64 * 100_000)),
            );
            sched.fork(
                1,
                record,
                1,
                col,
                Hints::one(Addr::new(col as u64 * 100_000)),
            );
        }
        assert_eq!(sched.phases(), 3);
        assert_eq!(sched.pending(), 24);
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 24);
        let phases: Vec<usize> = log.iter().map(|&(p, _)| p).collect();
        assert!(phases.windows(2).all(|w| w[0] <= w[1]), "{phases:?}");
        assert_eq!(sched.pending(), 0);
        assert_eq!(sched.phases(), 0);
    }

    #[test]
    fn locality_grouping_within_each_phase() {
        let mut sched: PhasedScheduler<Log> = PhasedScheduler::new(config());
        // Two blocks (addresses 0 and far); interleaved fork order.
        for i in 0..6 {
            let addr = if i % 2 == 0 { 0u64 } else { 1 << 30 };
            sched.fork(0, record, 0, i, Hints::one(Addr::new(addr)));
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        let order: Vec<usize> = log.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, vec![0, 2, 4, 1, 3, 5], "binned within the phase");
    }

    #[test]
    fn retain_re_runs_all_phases() {
        let mut sched: PhasedScheduler<Log> = PhasedScheduler::new(config());
        sched.fork(0, record, 0, 0, Hints::none());
        sched.fork(1, record, 1, 0, Hints::none());
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Retain);
        assert_eq!(sched.pending(), 2);
        sched.run(&mut log, RunMode::Consume);
        assert_eq!(log.len(), 4);
        assert_eq!(&log[..2], &log[2..]);
    }

    #[test]
    fn sparse_phase_numbers_are_fine() {
        let mut sched: PhasedScheduler<Log> = PhasedScheduler::new(config());
        sched.fork(1000, record, 1000, 0, Hints::none());
        sched.fork(3, record, 3, 0, Hints::none());
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        assert_eq!(log, vec![(3, 0), (1000, 0)]);
    }

    #[test]
    fn phase_stats_report_per_phase() {
        let mut sched: PhasedScheduler<Log> = PhasedScheduler::new(config());
        for i in 0..5 {
            sched.fork(7, record, i, 0, Hints::one(Addr::new(i as u64 * 1_000_000)));
        }
        let stats = sched.phase_stats(7).unwrap();
        assert_eq!(stats.threads(), 5);
        assert_eq!(stats.bins(), 5);
        assert!(sched.phase_stats(8).is_none());
    }

    #[test]
    fn empty_run_is_noop() {
        let mut sched: PhasedScheduler<Log> = PhasedScheduler::new(config());
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 0);
    }
}

//! Scheduling hints: the addresses a thread expects to reference.

use memtrace::Addr;
use std::fmt;

/// The maximum hint dimensionality the package implements.
///
/// The paper: "Our thread package implements the scheduling algorithm
/// for the three-dimensional case, although it is quite easy to extend
/// it to higher dimensional cases." — demonstrated: this package
/// carries four, and raising the constant further is mechanical.
pub const MAX_DIMS: usize = 4;

/// One to four address hints attached to a thread at fork time.
///
/// Hints name the data a thread will reference — "intuitively, the two
/// largest objects referenced by the thread or the two objects most
/// frequently referenced" (§2.3). Unused dimensions are the null
/// address, mirroring the paper's `th_fork(..., hint3 = 0)` convention.
///
/// # Examples
///
/// ```
/// use locality_sched::{Addr, Hints};
///
/// let one = Hints::one(Addr::new(0x1000));
/// assert_eq!(one.dims(), 1);
/// let three = Hints::three(Addr::new(1), Addr::new(2), Addr::new(3));
/// assert_eq!(three.dims(), 3);
/// assert_eq!(three.get(2), Addr::new(3));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Hints {
    addrs: [Addr; MAX_DIMS],
}

impl Hints {
    /// No hints: the thread lands in the scheduler's origin bin, so
    /// hint-less threads still run (in creation order relative to each
    /// other).
    pub fn none() -> Self {
        Hints::default()
    }

    /// A one-dimensional hint (paper: SOR uses one hint per thread).
    pub fn one(h1: Addr) -> Self {
        Hints {
            addrs: [h1, Addr::NULL, Addr::NULL, Addr::NULL],
        }
    }

    /// A two-dimensional hint (paper: matmul hints with two column
    /// addresses).
    pub fn two(h1: Addr, h2: Addr) -> Self {
        Hints {
            addrs: [h1, h2, Addr::NULL, Addr::NULL],
        }
    }

    /// A three-dimensional hint (paper: N-body hints with scaled x, y,
    /// z body coordinates).
    pub fn three(h1: Addr, h2: Addr, h3: Addr) -> Self {
        Hints {
            addrs: [h1, h2, h3, Addr::NULL],
        }
    }

    /// A four-dimensional hint — beyond the paper's implementation,
    /// showing the promised "higher dimensional cases" extension.
    pub fn four(h1: Addr, h2: Addr, h3: Addr, h4: Addr) -> Self {
        Hints {
            addrs: [h1, h2, h3, h4],
        }
    }

    /// Number of meaningful (non-null trailing) dimensions.
    pub fn dims(&self) -> usize {
        (0..MAX_DIMS)
            .rev()
            .find(|&d| !self.addrs[d].is_null())
            .map_or(0, |d| d + 1)
    }

    /// The hint in dimension `dim` (null if unused).
    ///
    /// # Panics
    ///
    /// Panics if `dim >= MAX_DIMS`.
    #[inline]
    pub fn get(&self, dim: usize) -> Addr {
        self.addrs[dim]
    }

    /// All dimensions (unused ones are null).
    #[inline]
    pub fn as_array(&self) -> [Addr; MAX_DIMS] {
        self.addrs
    }
}

impl fmt::Display for Hints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims = self.dims();
        if dims == 0 {
            return f.write_str("(no hints)");
        }
        f.write_str("(")?;
        for d in 0..dims {
            if d > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", self.addrs[d])?;
        }
        f.write_str(")")
    }
}

impl From<Addr> for Hints {
    fn from(addr: Addr) -> Self {
        Hints::one(addr)
    }
}

impl From<(Addr, Addr)> for Hints {
    fn from((a, b): (Addr, Addr)) -> Self {
        Hints::two(a, b)
    }
}

impl From<(Addr, Addr, Addr)> for Hints {
    fn from((a, b, c): (Addr, Addr, Addr)) -> Self {
        Hints::three(a, b, c)
    }
}

impl From<(Addr, Addr, Addr, Addr)> for Hints {
    fn from((a, b, c, d): (Addr, Addr, Addr, Addr)) -> Self {
        Hints::four(a, b, c, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_counts_trailing_nulls() {
        assert_eq!(Hints::none().dims(), 0);
        assert_eq!(Hints::one(Addr::new(1)).dims(), 1);
        assert_eq!(Hints::two(Addr::new(1), Addr::new(2)).dims(), 2);
        assert_eq!(
            Hints::three(Addr::new(1), Addr::new(2), Addr::new(3)).dims(),
            3
        );
        assert_eq!(
            Hints::four(Addr::new(1), Addr::new(2), Addr::new(3), Addr::new(4)).dims(),
            4
        );
    }

    #[test]
    fn middle_null_hint_is_allowed() {
        // A null in a middle dimension with a live third dimension still
        // counts as 3-D (the null coordinate maps to block 0).
        let h = Hints::three(Addr::new(1), Addr::NULL, Addr::new(3));
        assert_eq!(h.dims(), 3);
    }

    #[test]
    fn conversions() {
        let h: Hints = Addr::new(5).into();
        assert_eq!(h, Hints::one(Addr::new(5)));
        let h: Hints = (Addr::new(1), Addr::new(2)).into();
        assert_eq!(h.dims(), 2);
        let h: Hints = (Addr::new(1), Addr::new(2), Addr::new(3)).into();
        assert_eq!(h.dims(), 3);
        let h: Hints = (Addr::new(1), Addr::new(2), Addr::new(3), Addr::new(4)).into();
        assert_eq!(h.dims(), 4);
    }

    #[test]
    fn display_formats_by_dims() {
        assert_eq!(Hints::none().to_string(), "(no hints)");
        assert_eq!(Hints::one(Addr::new(16)).to_string(), "(0x10)");
        assert_eq!(
            Hints::two(Addr::new(1), Addr::new(2)).to_string(),
            "(0x1, 0x2)"
        );
    }

    #[test]
    fn as_array_roundtrip() {
        let h = Hints::three(Addr::new(1), Addr::new(2), Addr::new(3));
        assert_eq!(
            h.as_array(),
            [Addr::new(1), Addr::new(2), Addr::new(3), Addr::NULL]
        );
        assert_eq!(h.get(0), Addr::new(1));
    }
}

//! The bin hash table and ready list (paper §3.2).
//!
//! "The hash table organizes the bins. Hash collisions are resolved by
//! chaining, and the table is simply a three-dimensional array of
//! pointers to bins" — here four-dimensional, matching `MAX_DIMS`.
//! "… The ready list is a simple linked list
//! containing all allocated bins. Each time a new bin is allocated, it
//! is added to the end of this list."
//!
//! Bins are identified by dense `u32` ids. Because ids are assigned in
//! allocation order, the ready list is simply `0..len` — the id space
//! *is* the list — while the buckets array plus per-bin chain links
//! reproduce the paper's collision structure exactly.

use crate::hint::MAX_DIMS;

/// Identifier of a bin, dense in allocation (= ready-list) order.
pub(crate) type BinId = u32;

const NIL: BinId = BinId::MAX;

/// Hash table mapping block coordinates to bin ids, with chained
/// collision resolution over a fixed `hash_size⁴` bucket array.
///
/// Slots freed by [`remove`](BinTable::remove) go on a free list and
/// are reused by the next insert, so a long-running online engine with
/// eviction enabled keeps the id space (and every id-indexed side
/// array) bounded. Batch runs never remove, so for them the id space
/// stays dense in allocation order exactly as before.
#[derive(Clone, Debug)]
pub(crate) struct BinTable {
    /// Head bin id per bucket.
    buckets: Vec<BinId>,
    /// Block coordinates of each allocated bin (indexed by bin id).
    keys: Vec<[u64; MAX_DIMS]>,
    /// Next bin in the same bucket's chain (indexed by bin id).
    next: Vec<BinId>,
    /// Whether each slot currently holds a live bin (indexed by bin
    /// id); freed slots keep their stale key until reused.
    live: Vec<bool>,
    /// Freed slot ids awaiting reuse (LIFO).
    free: Vec<BinId>,
    /// Number of live bins (`len()`); `keys.len()` minus freed slots.
    live_count: usize,
    mask: u64,
    dim_bits: u32,
}

impl BinTable {
    /// Creates a table with `hash_size` buckets per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `hash_size` is not a power of two (validated upstream
    /// by `SchedulerConfig`).
    pub(crate) fn new(hash_size: usize) -> Self {
        assert!(hash_size.is_power_of_two());
        BinTable {
            buckets: vec![NIL; hash_size.pow(MAX_DIMS as u32)],
            keys: Vec::new(),
            next: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            live_count: 0,
            mask: hash_size as u64 - 1,
            dim_bits: hash_size.trailing_zeros(),
        }
    }

    /// The default hash: "a shift and a mask operation on each hint"
    /// (the shift already happened when hints became block coords).
    #[inline]
    fn bucket_of(&self, key: [u64; MAX_DIMS]) -> usize {
        let mut bucket = 0u64;
        for coord in key {
            bucket = (bucket << self.dim_bits) | (coord & self.mask);
        }
        bucket as usize
    }

    /// Finds the bin for `key`, allocating a new id if absent.
    ///
    /// Returns `(id, created)`.
    #[inline]
    pub(crate) fn lookup_or_insert(&mut self, key: [u64; MAX_DIMS]) -> (BinId, bool) {
        let bucket = self.bucket_of(key);
        let mut id = self.buckets[bucket];
        while id != NIL {
            if self.keys[id as usize] == key {
                return (id, false);
            }
            id = self.next[id as usize];
        }
        let new_id = self.alloc_slot(key, self.buckets[bucket]);
        self.buckets[bucket] = new_id;
        (new_id, true)
    }

    /// Claims a slot (reusing a freed one if available), storing `key`
    /// and chain link `next`.
    #[inline]
    fn alloc_slot(&mut self, key: [u64; MAX_DIMS], next: BinId) -> BinId {
        self.live_count += 1;
        match self.free.pop() {
            Some(id) => {
                self.keys[id as usize] = key;
                self.next[id as usize] = next;
                self.live[id as usize] = true;
                id
            }
            None => {
                let id = self.keys.len() as BinId;
                assert!(id != NIL, "bin id space exhausted");
                self.keys.push(key);
                self.next.push(next);
                self.live.push(true);
                id
            }
        }
    }

    /// Frees the slot of bin `id`, unlinking it from its bucket chain.
    /// The id is recycled by a later insert; until then the slot's key
    /// is stale and [`is_live`](BinTable::is_live) reports `false`.
    ///
    /// Keys appended via [`append_unique`](BinTable::append_unique)
    /// were never chained; for them the chain walk falls off the end
    /// harmlessly and only the slot is freed.
    pub(crate) fn remove(&mut self, id: BinId) {
        debug_assert!(self.live[id as usize], "double free of bin {id}");
        let bucket = self.bucket_of(self.keys[id as usize]);
        if self.buckets[bucket] == id {
            self.buckets[bucket] = self.next[id as usize];
        } else {
            let mut cur = self.buckets[bucket];
            while cur != NIL {
                let succ = self.next[cur as usize];
                if succ == id {
                    self.next[cur as usize] = self.next[id as usize];
                    break;
                }
                cur = succ;
            }
        }
        self.next[id as usize] = NIL;
        self.live[id as usize] = false;
        self.live_count -= 1;
        self.free.push(id);
    }

    /// Whether `id` currently names a live bin.
    #[inline]
    pub(crate) fn is_live(&self, id: BinId) -> bool {
        (id as usize) < self.live.len() && self.live[id as usize]
    }

    /// Appends a bin for `key` without consulting the bucket chains.
    ///
    /// For policies whose every key is fresh
    /// ([`BinPolicy::always_unique`](crate::BinPolicy::always_unique)),
    /// chaining each key into one bucket would make insertion
    /// quadratic; appending keeps it O(1). Keys appended this way are
    /// not findable by [`lookup_or_insert`](BinTable::lookup_or_insert)
    /// — unique-key policies never look up.
    #[inline]
    pub(crate) fn append_unique(&mut self, key: [u64; MAX_DIMS]) -> BinId {
        self.alloc_slot(key, NIL)
    }

    /// Public (crate) view of the bucket a key hashes to, for the
    /// package-memory tracer.
    #[inline]
    pub(crate) fn bucket_index(&self, key: [u64; MAX_DIMS]) -> usize {
        self.bucket_of(key)
    }

    /// Number of live bins.
    pub(crate) fn len(&self) -> usize {
        self.live_count
    }

    /// Block coordinates of every allocated slot, indexed by bin id
    /// (i.e. in ready-list order). Freed slots keep a stale key; this
    /// is only meaningful for batch schedulers, which never free (the
    /// online drain path does not use it).
    pub(crate) fn keys(&self) -> &[[u64; MAX_DIMS]] {
        &self.keys
    }

    /// Block coordinates of one bin.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by
    /// [`lookup_or_insert`](BinTable::lookup_or_insert).
    #[inline]
    pub(crate) fn key(&self, id: BinId) -> [u64; MAX_DIMS] {
        self.keys[id as usize]
    }

    /// Removes all bins, keeping the bucket array allocation.
    pub(crate) fn clear(&mut self) {
        self.buckets.fill(NIL);
        self.keys.clear();
        self.next.clear();
        self.live.clear();
        self.free.clear();
        self.live_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_bin() {
        let mut t = BinTable::new(4);
        let (a, created_a) = t.lookup_or_insert([1, 2, 3, 0]);
        let (b, created_b) = t.lookup_or_insert([1, 2, 3, 0]);
        assert_eq!(a, b);
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_allocation_ordered() {
        let mut t = BinTable::new(4);
        let (a, _) = t.lookup_or_insert([0, 0, 0, 0]);
        let (b, _) = t.lookup_or_insert([1, 0, 0, 0]);
        let (c, _) = t.lookup_or_insert([2, 0, 0, 0]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(t.keys()[1], [1, 0, 0, 0]);
    }

    #[test]
    fn colliding_keys_get_distinct_bins() {
        // hash_size 4: coords 1 and 5 mask to the same bucket index.
        let mut t = BinTable::new(4);
        let (a, _) = t.lookup_or_insert([1, 0, 0, 0]);
        let (b, _) = t.lookup_or_insert([5, 0, 0, 0]);
        assert_ne!(a, b, "chained collision must preserve distinct blocks");
        // Both keys still resolve to their own bin.
        assert_eq!(t.lookup_or_insert([1, 0, 0, 0]).0, a);
        assert_eq!(t.lookup_or_insert([5, 0, 0, 0]).0, b);
    }

    #[test]
    fn clear_empties_the_table() {
        let mut t = BinTable::new(4);
        t.lookup_or_insert([1, 2, 3, 0]);
        t.clear();
        assert_eq!(t.len(), 0);
        let (id, created) = t.lookup_or_insert([1, 2, 3, 0]);
        assert_eq!(id, 0);
        assert!(created);
    }

    #[test]
    fn remove_unlinks_and_recycles_the_slot() {
        let mut t = BinTable::new(4);
        let (a, _) = t.lookup_or_insert([1, 0, 0, 0]);
        let (b, _) = t.lookup_or_insert([5, 0, 0, 0]); // same bucket as a
        let (c, _) = t.lookup_or_insert([9, 0, 0, 0]); // same bucket again
        assert_eq!(t.len(), 3);

        // Remove the middle of the chain; the other two still resolve.
        t.remove(b);
        assert_eq!(t.len(), 2);
        assert!(t.is_live(a) && !t.is_live(b) && t.is_live(c));
        assert_eq!(t.lookup_or_insert([1, 0, 0, 0]), (a, false));
        assert_eq!(t.lookup_or_insert([9, 0, 0, 0]), (c, false));

        // The removed key re-inserts as a fresh bin, reusing slot b.
        let (b2, created) = t.lookup_or_insert([5, 0, 0, 0]);
        assert!(created);
        assert_eq!(b2, b, "freed slot must be recycled");
        assert_eq!(t.len(), 3);
        assert!(t.is_live(b2));
    }

    #[test]
    fn remove_chain_head_and_tail() {
        let mut t = BinTable::new(4);
        let (a, _) = t.lookup_or_insert([1, 0, 0, 0]);
        let (b, _) = t.lookup_or_insert([5, 0, 0, 0]);
        // b is the chain head (most recent insert), a the tail.
        t.remove(b);
        assert_eq!(t.lookup_or_insert([1, 0, 0, 0]), (a, false));
        t.remove(a);
        assert_eq!(t.len(), 0);
        let (id, created) = t.lookup_or_insert([1, 0, 0, 0]);
        assert!(created);
        assert!(t.is_live(id));
    }

    #[test]
    fn remove_unique_slot_frees_without_chain() {
        let mut t = BinTable::new(4);
        let a = t.append_unique([7, 0, 0, 0]);
        let b = t.append_unique([7, 0, 0, 0]);
        assert_eq!(t.len(), 2);
        t.remove(a);
        assert_eq!(t.len(), 1);
        assert!(!t.is_live(a) && t.is_live(b));
        // Slot reuse applies to unique appends too.
        let c = t.append_unique([8, 0, 0, 0]);
        assert_eq!(c, a);
        assert_eq!(t.key(c), [8, 0, 0, 0]);
    }

    #[test]
    fn dense_key_space_allocates_many_bins() {
        let mut t = BinTable::new(2); // only 8 buckets, heavy chaining
        for x in 0..10u64 {
            for y in 0..10u64 {
                t.lookup_or_insert([x, y, 0, 0]);
            }
        }
        assert_eq!(t.len(), 100);
        // Every key resolves back to a unique id.
        let mut seen = std::collections::HashSet::new();
        for x in 0..10u64 {
            for y in 0..10u64 {
                let (id, created) = t.lookup_or_insert([x, y, 0, 0]);
                assert!(!created);
                assert!(seen.insert(id));
            }
        }
    }
}

//! The bin hash table and ready list (paper §3.2).
//!
//! "The hash table organizes the bins. Hash collisions are resolved by
//! chaining, and the table is simply a three-dimensional array of
//! pointers to bins" — here four-dimensional, matching `MAX_DIMS`.
//! "… The ready list is a simple linked list
//! containing all allocated bins. Each time a new bin is allocated, it
//! is added to the end of this list."
//!
//! Bins are identified by dense `u32` ids. Because ids are assigned in
//! allocation order, the ready list is simply `0..len` — the id space
//! *is* the list — while the buckets array plus per-bin chain links
//! reproduce the paper's collision structure exactly.

use crate::hint::MAX_DIMS;

/// Identifier of a bin, dense in allocation (= ready-list) order.
pub(crate) type BinId = u32;

const NIL: BinId = BinId::MAX;

/// Hash table mapping block coordinates to bin ids, with chained
/// collision resolution over a fixed `hash_size⁴` bucket array.
#[derive(Clone, Debug)]
pub(crate) struct BinTable {
    /// Head bin id per bucket.
    buckets: Vec<BinId>,
    /// Block coordinates of each allocated bin (indexed by bin id).
    keys: Vec<[u64; MAX_DIMS]>,
    /// Next bin in the same bucket's chain (indexed by bin id).
    next: Vec<BinId>,
    mask: u64,
    dim_bits: u32,
}

impl BinTable {
    /// Creates a table with `hash_size` buckets per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `hash_size` is not a power of two (validated upstream
    /// by `SchedulerConfig`).
    pub(crate) fn new(hash_size: usize) -> Self {
        assert!(hash_size.is_power_of_two());
        BinTable {
            buckets: vec![NIL; hash_size.pow(MAX_DIMS as u32)],
            keys: Vec::new(),
            next: Vec::new(),
            mask: hash_size as u64 - 1,
            dim_bits: hash_size.trailing_zeros(),
        }
    }

    /// The default hash: "a shift and a mask operation on each hint"
    /// (the shift already happened when hints became block coords).
    #[inline]
    fn bucket_of(&self, key: [u64; MAX_DIMS]) -> usize {
        let mut bucket = 0u64;
        for coord in key {
            bucket = (bucket << self.dim_bits) | (coord & self.mask);
        }
        bucket as usize
    }

    /// Finds the bin for `key`, allocating a new id if absent.
    ///
    /// Returns `(id, created)`.
    #[inline]
    pub(crate) fn lookup_or_insert(&mut self, key: [u64; MAX_DIMS]) -> (BinId, bool) {
        let bucket = self.bucket_of(key);
        let mut id = self.buckets[bucket];
        while id != NIL {
            if self.keys[id as usize] == key {
                return (id, false);
            }
            id = self.next[id as usize];
        }
        let new_id = self.keys.len() as BinId;
        assert!(new_id != NIL, "bin id space exhausted");
        self.keys.push(key);
        self.next.push(self.buckets[bucket]);
        self.buckets[bucket] = new_id;
        (new_id, true)
    }

    /// Appends a bin for `key` without consulting the bucket chains.
    ///
    /// For policies whose every key is fresh
    /// ([`BinPolicy::always_unique`](crate::BinPolicy::always_unique)),
    /// chaining each key into one bucket would make insertion
    /// quadratic; appending keeps it O(1). Keys appended this way are
    /// not findable by [`lookup_or_insert`](BinTable::lookup_or_insert)
    /// — unique-key policies never look up.
    #[inline]
    pub(crate) fn append_unique(&mut self, key: [u64; MAX_DIMS]) -> BinId {
        let new_id = self.keys.len() as BinId;
        assert!(new_id != NIL, "bin id space exhausted");
        self.keys.push(key);
        self.next.push(NIL);
        new_id
    }

    /// Public (crate) view of the bucket a key hashes to, for the
    /// package-memory tracer.
    #[inline]
    pub(crate) fn bucket_index(&self, key: [u64; MAX_DIMS]) -> usize {
        self.bucket_of(key)
    }

    /// Number of allocated bins.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Block coordinates of every allocated bin, indexed by bin id
    /// (i.e. in ready-list order).
    pub(crate) fn keys(&self) -> &[[u64; MAX_DIMS]] {
        &self.keys
    }

    /// Block coordinates of one bin.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by
    /// [`lookup_or_insert`](BinTable::lookup_or_insert).
    #[inline]
    pub(crate) fn key(&self, id: BinId) -> [u64; MAX_DIMS] {
        self.keys[id as usize]
    }

    /// Removes all bins, keeping the bucket array allocation.
    pub(crate) fn clear(&mut self) {
        self.buckets.fill(NIL);
        self.keys.clear();
        self.next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_bin() {
        let mut t = BinTable::new(4);
        let (a, created_a) = t.lookup_or_insert([1, 2, 3, 0]);
        let (b, created_b) = t.lookup_or_insert([1, 2, 3, 0]);
        assert_eq!(a, b);
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_allocation_ordered() {
        let mut t = BinTable::new(4);
        let (a, _) = t.lookup_or_insert([0, 0, 0, 0]);
        let (b, _) = t.lookup_or_insert([1, 0, 0, 0]);
        let (c, _) = t.lookup_or_insert([2, 0, 0, 0]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(t.keys()[1], [1, 0, 0, 0]);
    }

    #[test]
    fn colliding_keys_get_distinct_bins() {
        // hash_size 4: coords 1 and 5 mask to the same bucket index.
        let mut t = BinTable::new(4);
        let (a, _) = t.lookup_or_insert([1, 0, 0, 0]);
        let (b, _) = t.lookup_or_insert([5, 0, 0, 0]);
        assert_ne!(a, b, "chained collision must preserve distinct blocks");
        // Both keys still resolve to their own bin.
        assert_eq!(t.lookup_or_insert([1, 0, 0, 0]).0, a);
        assert_eq!(t.lookup_or_insert([5, 0, 0, 0]).0, b);
    }

    #[test]
    fn clear_empties_the_table() {
        let mut t = BinTable::new(4);
        t.lookup_or_insert([1, 2, 3, 0]);
        t.clear();
        assert_eq!(t.len(), 0);
        let (id, created) = t.lookup_or_insert([1, 2, 3, 0]);
        assert_eq!(id, 0);
        assert!(created);
    }

    #[test]
    fn dense_key_space_allocates_many_bins() {
        let mut t = BinTable::new(2); // only 8 buckets, heavy chaining
        for x in 0..10u64 {
            for y in 0..10u64 {
                t.lookup_or_insert([x, y, 0, 0]);
            }
        }
        assert_eq!(t.len(), 100);
        // Every key resolves back to a unique id.
        let mut seen = std::collections::HashSet::new();
        for x in 0..10u64 {
            for y in 0..10u64 {
                let (id, created) = t.lookup_or_insert([x, y, 0, 0]);
                assert!(!created);
                assert!(seen.insert(id));
            }
        }
    }
}

//! Bin traversal orders.

use crate::hint::MAX_DIMS;
use crate::table::BinId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The order in which `run` visits non-empty bins.
///
/// The paper (§2.3): "Scheduling involves traversing the bins along
/// some path, preferably the shortest one", and its implementation
/// (§3.2) visits bins in ready-list (allocation) order. The
/// alternatives here let the ablation benches quantify how much the
/// tour matters once threads are binned:
///
/// * [`AllocationOrder`](Tour::AllocationOrder) — the paper's
///   implementation; for loop-nest workloads, creation order already
///   yields a near-monotone walk of the scheduling plane.
/// * [`SortedKey`](Tour::SortedKey) — lexicographic over block
///   coordinates (row-major walk of the plane).
/// * [`Hilbert`](Tour::Hilbert) — Hilbert space-filling curve over the
///   first two dimensions: an O(1)-per-bin approximation of the
///   "shortest tour" the paper gestures at, guaranteeing adjacent bins
///   differ in one block step. The curve covers dimensions 0–1 *only*
///   (while keys carry [`MAX_DIMS`] = 4 coordinates); see
///   [`Hilbert`](Tour::Hilbert) for the dimension-2/3 tie-break.
/// * [`Morton`](Tour::Morton) — Z-order over all three dimensions.
/// * [`Random`](Tour::Random) — seeded random order; the adversarial
///   baseline (destroys inter-bin locality while keeping intra-bin
///   locality).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tour {
    /// Visit bins in allocation order (paper's ready list).
    AllocationOrder,
    /// Visit bins in lexicographic block-coordinate order.
    SortedKey,
    /// Visit bins along a 2-D Hilbert curve over dimensions 0 and 1.
    ///
    /// The curve covers only the first two dimensions even though keys
    /// are 4-D: bins sharing a (dim-0, dim-1) plane cell sort by the
    /// lexicographic tie-break `(dim 2, dim 3)`, so all of a plane
    /// cell's bins drain contiguously (ascending in dims 2–3) before
    /// the tour takes its next unit step in the plane. For 3-D hint
    /// workloads (nbody's x/y/z) this means the tour is Hilbert-local
    /// in x/y and sweeps z slabs in order within each column — it does
    /// *not* take unit steps in z across plane cells.
    Hilbert,
    /// Visit bins in 3-D Morton (Z-curve) order.
    Morton,
    /// Visit bins in seeded random order.
    Random(u64),
}

impl Tour {
    /// Computes the visit order over bins whose block coordinates are
    /// `keys` (indexed by bin id).
    pub(crate) fn order(&self, keys: &[[u64; MAX_DIMS]]) -> Vec<BinId> {
        let mut ids: Vec<BinId> = (0..keys.len() as BinId).collect();
        match *self {
            Tour::AllocationOrder => {}
            Tour::SortedKey => {
                ids.sort_unstable_by_key(|&id| keys[id as usize]);
            }
            Tour::Hilbert => {
                ids.sort_unstable_by_key(|&id| {
                    let k = keys[id as usize];
                    (hilbert_d(k[0], k[1]), k[2], k[3])
                });
            }
            Tour::Morton => {
                ids.sort_unstable_by_key(|&id| {
                    let k = keys[id as usize];
                    morton3(k[0], k[1], k[2])
                });
            }
            Tour::Random(seed) => {
                let mut rng = SmallRng::seed_from_u64(seed);
                ids.shuffle(&mut rng);
            }
        }
        ids
    }

    /// Total-order rank of one bin key under this tour, for the
    /// *incremental* (online) drain: among the currently-ready drain
    /// units the engine picks the minimal `(rank, ready_seq)`, so two
    /// ready units always compare the same way the batch tour would
    /// have ordered them.
    ///
    /// [`AllocationOrder`](Tour::AllocationOrder) ranks every key
    /// equally — the tie-break on the ready sequence number then yields
    /// exactly the paper's ready list (FIFO by the moment a bin first
    /// received work). [`Random`](Tour::Random) cannot reproduce the
    /// batch shuffle incrementally (a shuffle needs the whole
    /// population); it degrades to a seeded hash of the key —
    /// stationary and deterministic, but *not* the offline permutation.
    pub(crate) fn rank(&self, key: [u64; MAX_DIMS]) -> [u64; MAX_DIMS] {
        match *self {
            Tour::AllocationOrder => [0; MAX_DIMS],
            Tour::SortedKey => key,
            Tour::Hilbert => [hilbert_d(key[0], key[1]), key[2], key[3], 0],
            Tour::Morton => [morton3(key[0], key[1], key[2]), key[3], 0, 0],
            Tour::Random(seed) => [scramble(seed, key), 0, 0, 0],
        }
    }
}

/// SplitMix64-style finalizer over a seeded fold of the key words: the
/// stationary stand-in for [`Tour::Random`]'s batch shuffle in
/// incremental mode.
fn scramble(seed: u64, key: [u64; MAX_DIMS]) -> u64 {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    for word in key {
        x = (x ^ word).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
    }
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bits per coordinate for the space-filling curves. Block coordinates
/// are addresses divided by block sizes of at least 2⁶, so 29 bits
/// cover a 2³⁵-byte hint space — far beyond any workload here.
const CURVE_BITS: u32 = 29;

/// Maps (x, y) to its distance along a 2-D Hilbert curve of order
/// [`CURVE_BITS`]. Coordinates beyond the curve's extent are clamped.
fn hilbert_d(x: u64, y: u64) -> u64 {
    let n: u64 = 1 << CURVE_BITS;
    let mut x = x.min(n - 1);
    let mut y = y.min(n - 1);
    let mut d: u64 = 0;
    let mut s: u64 = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant (classic xy2d rotation).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Interleaves the low 21 bits of three coordinates into a Morton code.
fn morton3(x: u64, y: u64, z: u64) -> u64 {
    fn spread(v: u64) -> u64 {
        let mut v = v & 0x1f_ffff; // 21 bits
        v = (v | (v << 32)) & 0x1f00000000ffff;
        v = (v | (v << 16)) & 0x1f0000ff0000ff;
        v = (v | (v << 8)) & 0x100f00f00f00f00f;
        v = (v | (v << 4)) & 0x10c30c30c30c30c3;
        v = (v | (v << 2)) & 0x1249249249249249;
        v
    }
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_keys(n: u64) -> Vec<[u64; MAX_DIMS]> {
        let mut keys = Vec::new();
        for x in 0..n {
            for y in 0..n {
                keys.push([x, y, 0, 0]);
            }
        }
        keys
    }

    fn is_permutation(order: &[BinId], len: usize) -> bool {
        let mut seen = vec![false; len];
        for &id in order {
            if seen[id as usize] {
                return false;
            }
            seen[id as usize] = true;
        }
        order.len() == len
    }

    #[test]
    fn every_tour_is_a_permutation() {
        let keys = grid_keys(7);
        for tour in [
            Tour::AllocationOrder,
            Tour::SortedKey,
            Tour::Hilbert,
            Tour::Morton,
            Tour::Random(42),
        ] {
            let order = tour.order(&keys);
            assert!(is_permutation(&order, keys.len()), "{tour:?}");
        }
    }

    #[test]
    fn allocation_order_is_identity() {
        let keys = grid_keys(3);
        let order = Tour::AllocationOrder.order(&keys);
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_key_is_lexicographic() {
        let keys = vec![[2, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 0], [1, 5, 0, 0]];
        let order = Tour::SortedKey.order(&keys);
        assert_eq!(order, vec![2, 1, 3, 0]);
    }

    #[test]
    fn random_is_seeded_deterministic() {
        let keys = grid_keys(5);
        let a = Tour::Random(7).order(&keys);
        let b = Tour::Random(7).order(&keys);
        let c = Tour::Random(8).order(&keys);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn hilbert_visits_neighbours() {
        // On a full 2^k x 2^k grid the Hilbert tour moves exactly one
        // step (Manhattan distance 1) between consecutive bins.
        let n = 8;
        let keys = grid_keys(n);
        let order = Tour::Hilbert.order(&keys);
        for pair in order.windows(2) {
            let a = keys[pair[0] as usize];
            let b = keys[pair[1] as usize];
            let dist = a[0].abs_diff(b[0]) + a[1].abs_diff(b[1]);
            assert_eq!(dist, 1, "{a:?} -> {b:?}");
        }
    }

    #[test]
    fn hilbert_three_d_keys_tie_break_on_trailing_dims() {
        // nbody-style 3-D hints: a 4x4 plane of cells, each with two z
        // slabs. The curve orders plane cells; dims 2-3 only break
        // ties within a cell.
        let mut keys = Vec::new();
        for z in 0..2u64 {
            for x in 0..4u64 {
                for y in 0..4u64 {
                    keys.push([x, y, z, 0]);
                }
            }
        }
        let order = Tour::Hilbert.order(&keys);
        for pair in order.windows(2) {
            let a = keys[pair[0] as usize];
            let b = keys[pair[1] as usize];
            if (a[0], a[1]) == (b[0], b[1]) {
                // Same plane cell: the z slabs drain in ascending
                // order, back-to-back.
                assert!(a[2] < b[2], "tie-break ascending in dim 2: {a:?} -> {b:?}");
            } else {
                // New plane cell: a Hilbert unit step, entered at the
                // lowest z slab after fully draining the previous cell.
                let dist = a[0].abs_diff(b[0]) + a[1].abs_diff(b[1]);
                assert_eq!(dist, 1, "adjacent plane cells: {a:?} -> {b:?}");
                assert_eq!(a[2], 1, "previous cell drained to its last slab");
                assert_eq!(b[2], 0, "next cell starts at its first slab");
            }
        }
    }

    #[test]
    fn hilbert_distance_is_injective_on_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert!(seen.insert(hilbert_d(x, y)), "collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn morton_interleaves() {
        assert_eq!(morton3(0, 0, 0), 0);
        assert_eq!(morton3(1, 0, 0), 0b001);
        assert_eq!(morton3(0, 1, 0), 0b010);
        assert_eq!(morton3(0, 0, 1), 0b100);
        assert_eq!(morton3(3, 0, 0), 0b001001);
    }

    #[test]
    fn rank_order_matches_batch_order_for_key_tours() {
        // For the key-derived tours, sorting ready units by rank must
        // reproduce the batch tour exactly (keys are unique, and for
        // Morton the dim-3 values coincide, so no tie-break ambiguity).
        let mut keys = grid_keys(6);
        keys.iter_mut().enumerate().for_each(|(i, k)| {
            k[2] = (i as u64) % 3;
        });
        for tour in [Tour::SortedKey, Tour::Hilbert, Tour::Morton] {
            let batch = tour.order(&keys);
            let mut ranked: Vec<BinId> = (0..keys.len() as BinId).collect();
            ranked.sort_by_key(|&id| (tour.rank(keys[id as usize]), id));
            assert_eq!(ranked, batch, "{tour:?}");
        }
    }

    #[test]
    fn allocation_order_ranks_everything_equally() {
        let keys = grid_keys(4);
        let rank0 = Tour::AllocationOrder.rank(keys[0]);
        assert!(keys.iter().all(|&k| Tour::AllocationOrder.rank(k) == rank0));
    }

    #[test]
    fn random_rank_is_seeded_and_spread() {
        let keys = grid_keys(5);
        let a: Vec<_> = keys.iter().map(|&k| Tour::Random(7).rank(k)).collect();
        let b: Vec<_> = keys.iter().map(|&k| Tour::Random(7).rank(k)).collect();
        let c: Vec<_> = keys.iter().map(|&k| Tour::Random(8).rank(k)).collect();
        assert_eq!(a, b, "same seed, same ranks");
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), keys.len(), "no collisions on a grid");
    }

    #[test]
    fn tours_on_empty_bin_set() {
        for tour in [Tour::AllocationOrder, Tour::Hilbert, Tour::Random(1)] {
            assert!(tour.order(&[]).is_empty(), "{tour:?}");
        }
    }
}

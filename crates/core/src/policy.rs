//! Bin policies: the pluggable hints → bin-key mapping.
//!
//! The paper's engine (hash table, ready list, drain loop) is separate
//! from its *policy* (block sizes, symmetric folding): "the default
//! dimension sizes of the block are set such that their sum are the
//! same as the second-level cache size" (§3.2) is one choice among
//! many. [`BinPolicy`] makes that choice a first-class parameter of the
//! shared bin engine, so every scheduler in this crate — locality,
//! phased, FIFO, random, parallel — is a thin configuration of one
//! engine instead of five copies of the fork/bin/drain loop.
//!
//! Three policies reproduce and extend the paper:
//!
//! * [`PaperBlockHash`] — the paper's mapping, bit-identical to the
//!   pre-refactor `SchedulerConfig::block_coords`: shift each hint by
//!   `log2(block size)`, optionally fold symmetric hints by sorting
//!   coordinates descending.
//! * [`TopologyPolicy`] — an arbitrary machine hierarchy (L1 ⊂ L2 ⊂ L3
//!   ⊂ NUMA node ⊂ …): one block size per level, finest to coarsest.
//!   Threads are binned at the finest granularity; the engine tours
//!   the coarsest-level groups and drains nested sub-bins back-to-back
//!   in sorted-key order at every depth.
//! * [`Hierarchical`] — the two-level (L1-in-L2) special case, kept as
//!   a thin depth-2 alias of [`TopologyPolicy`]; its drain order is
//!   pinned bit-identical to the pre-topology implementation by the
//!   golden digests.
//!
//! Two degenerate policies express the baselines:
//!
//! * [`SingleBin`] — every thread in one bin (FIFO order).
//! * [`UniqueBin`] — every thread in its own bin (combined with
//!   [`Tour::Random`](crate::Tour::Random), a seeded shuffle).

use crate::config::ConfigError;
use crate::hint::MAX_DIMS;
use crate::{Hints, SchedulerConfig};

/// Maximum depth of a [`TopologyPolicy`] ancestor ladder (matches
/// `cachesim::MAX_TOPOLOGY_LEVELS`).
pub const MAX_LEVELS: usize = 8;

/// A policy mapping fork-time [`Hints`] to a bin key in the scheduling
/// space. The bin engine owns everything else (hashing, ready list,
/// tour, drain loop); the policy owns only geometry.
///
/// `bin_key` takes `&mut self` so policies may be stateful (see
/// [`UniqueBin`]); stateless policies simply ignore the mutability.
pub trait BinPolicy: Clone + std::fmt::Debug {
    /// Maps hints to the (finest-level) bin key.
    fn bin_key(&mut self, hints: Hints) -> [u64; MAX_DIMS];

    /// Maps a fine bin key to its enclosing ancestor key at `level` of
    /// the policy's ladder: level 0 is the key itself, level
    /// `depth() - 1` the coarsest grouping. Levels at or beyond the
    /// depth saturate at the coarsest key. The engine tours
    /// coarsest-level groups and drains each group's bins contiguously,
    /// sorted by their full ancestor ladder; for single-level policies
    /// every level is the identity, so the tour sees the bin keys
    /// themselves.
    fn ancestor_key(&self, key: [u64; MAX_DIMS], level: u32) -> [u64; MAX_DIMS] {
        let _ = level;
        key
    }

    /// Number of ladder levels (1 = flat, 2 = sub-bins within parents,
    /// 3+ = deeper machine hierarchies). The engine only performs
    /// ancestor grouping when this exceeds 1, keeping flat policies on
    /// the paper's exact path.
    fn depth(&self) -> u32 {
        1
    }

    /// Whether this policy folds hint permutations into one bin
    /// (`bin_key` is invariant under reordering of the hint addresses).
    fn symmetric(&self) -> bool {
        false
    }

    /// Whether every `bin_key` call returns a key never seen before.
    /// The engine then appends bins without consulting the hash table,
    /// avoiding quadratic chain walks for per-thread-unique keys.
    fn always_unique(&self) -> bool {
        false
    }
}

/// The paper's policy (§2.3/§3.2): each hint address shifted right by
/// `log2(block size)` for its dimension, with optional symmetric
/// folding (coordinates sorted descending so mirrored hints share a
/// bin). Bit-identical to the pre-refactor `Scheduler` binning — the
/// differential and golden suites pin this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperBlockHash {
    shifts: [u32; MAX_DIMS],
    symmetric: bool,
}

impl PaperBlockHash {
    /// Derives the policy from a [`SchedulerConfig`]'s block sizes and
    /// symmetric flag — the mapping every config-built scheduler uses.
    pub fn from_config(config: &SchedulerConfig) -> Self {
        PaperBlockHash {
            shifts: config.shifts(),
            symmetric: config.symmetric(),
        }
    }

    /// Builds the policy from per-dimension block sizes (each a nonzero
    /// power of two).
    ///
    /// # Errors
    ///
    /// Returns an error if any block size is zero or not a power of
    /// two.
    pub fn new(block_sizes: [u64; MAX_DIMS], symmetric: bool) -> Result<Self, ConfigError> {
        let mut shifts = [0u32; MAX_DIMS];
        for (dim, &size) in block_sizes.iter().enumerate() {
            if size == 0 || !size.is_power_of_two() {
                return Err(ConfigError::new(format!(
                    "block size {size} in dimension {dim} is not a nonzero power of two"
                )));
            }
            shifts[dim] = size.trailing_zeros();
        }
        Ok(PaperBlockHash { shifts, symmetric })
    }
}

impl BinPolicy for PaperBlockHash {
    #[inline]
    fn bin_key(&mut self, hints: Hints) -> [u64; MAX_DIMS] {
        let addrs = hints.as_array();
        let mut coords = [
            addrs[0].raw() >> self.shifts[0],
            addrs[1].raw() >> self.shifts[1],
            addrs[2].raw() >> self.shifts[2],
            addrs[3].raw() >> self.shifts[3],
        ];
        if self.symmetric {
            // Canonicalize the coordinate multiset; descending order
            // keeps null (zero) coordinates in the trailing dimensions.
            coords.sort_unstable_by(|a, b| b.cmp(a));
        }
        coords
    }

    fn symmetric(&self) -> bool {
        self.symmetric
    }
}

/// Multi-level policy: one bin block size per machine-hierarchy level,
/// finest to coarsest (L1 ⊂ L2 ⊂ L3 ⊂ NUMA node ⊂ …).
///
/// Threads are keyed at the finest granularity
/// (`addr >> log2(level-0 block)`); the ancestor key at level `l`
/// truncates the fine key to that level's block granularity. The engine
/// tours the coarsest-level groups — so inter-group order matches what
/// [`PaperBlockHash`] with coarsest blocks would produce — and drains
/// each group's bins sorted by their full ancestor ladder, running
/// threads that share any level's working set back-to-back. This is the
/// "hierarchy level as a scheduling parameter" extension (compare
/// bubble scheduling over the cache hierarchy): coarsest-level capacity
/// misses are avoided by the grouping exactly as in the paper, and
/// finer-level capacity misses shrink because the within-group order is
/// no longer arbitrary ("the scheduling order of threads in the same
/// bin can be arbitrary", §2.3 — here it nests locality at every
/// depth).
///
/// Build one from a machine with
/// `BinGeometry::topology_policy` (workloads crate), which derives the
/// per-level block sizes from a
/// `cachesim::MachineTopology`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyPolicy {
    base_shifts: [u32; MAX_DIMS],
    /// Per-level, per-dimension cumulative shift from the fine key to
    /// that level's ancestor key (`rel_shifts[0]` is all zeros).
    rel_shifts: [[u32; MAX_DIMS]; MAX_LEVELS],
    depth: u32,
    symmetric: bool,
}

impl TopologyPolicy {
    /// Builds a policy from per-level, per-dimension block sizes,
    /// finest level first.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no levels or more than
    /// [`MAX_LEVELS`], if any block size is zero or not a power of two,
    /// if a dimension's block sizes decrease up the levels, or if
    /// `symmetric` is requested with non-uniform block sizes within any
    /// level (folding permutes coordinates across dimensions, which is
    /// only meaningful when every dimension uses the same geometry).
    pub fn new(level_blocks: &[[u64; MAX_DIMS]], symmetric: bool) -> Result<Self, ConfigError> {
        if level_blocks.is_empty() {
            return Err(ConfigError::new("topology policy needs at least one level"));
        }
        if level_blocks.len() > MAX_LEVELS {
            return Err(ConfigError::new(format!(
                "topology policy has {} levels, more than the supported {MAX_LEVELS}",
                level_blocks.len()
            )));
        }
        let mut shifts = [[0u32; MAX_DIMS]; MAX_LEVELS];
        for (level, blocks) in level_blocks.iter().enumerate() {
            for (dim, &size) in blocks.iter().enumerate() {
                if size == 0 || !size.is_power_of_two() {
                    return Err(ConfigError::new(format!(
                        "block size {size} in level {level} dimension {dim} is not a nonzero \
                         power of two"
                    )));
                }
                shifts[level][dim] = size.trailing_zeros();
            }
            if symmetric && blocks.windows(2).any(|w| w[0] != w[1]) {
                return Err(ConfigError::new(
                    "symmetric folding requires uniform block sizes across dimensions",
                ));
            }
        }
        for level in 1..level_blocks.len() {
            for dim in 0..MAX_DIMS {
                if shifts[level][dim] < shifts[level - 1][dim] {
                    return Err(ConfigError::new(format!(
                        "block sizes must not shrink up the levels: dimension {dim} uses {} at \
                         level {} but {} at level {level}",
                        level_blocks[level - 1][dim],
                        level - 1,
                        level_blocks[level][dim],
                    )));
                }
            }
        }
        let base_shifts = shifts[0];
        let mut rel_shifts = [[0u32; MAX_DIMS]; MAX_LEVELS];
        for level in 0..level_blocks.len() {
            for dim in 0..MAX_DIMS {
                rel_shifts[level][dim] = shifts[level][dim] - base_shifts[dim];
            }
        }
        Ok(TopologyPolicy {
            base_shifts,
            rel_shifts,
            depth: level_blocks.len() as u32,
            symmetric,
        })
    }

    /// Convenience constructor: the same block size in every dimension
    /// of each level.
    pub fn uniform(level_blocks: &[u64], symmetric: bool) -> Result<Self, ConfigError> {
        let levels: Vec<[u64; MAX_DIMS]> = level_blocks.iter().map(|&b| [b; MAX_DIMS]).collect();
        TopologyPolicy::new(&levels, symmetric)
    }
}

impl BinPolicy for TopologyPolicy {
    #[inline]
    fn bin_key(&mut self, hints: Hints) -> [u64; MAX_DIMS] {
        let addrs = hints.as_array();
        let mut coords = [
            addrs[0].raw() >> self.base_shifts[0],
            addrs[1].raw() >> self.base_shifts[1],
            addrs[2].raw() >> self.base_shifts[2],
            addrs[3].raw() >> self.base_shifts[3],
        ];
        if self.symmetric {
            // Shifting is monotone, so descending fine keys yield
            // descending ancestor keys: folding stays consistent across
            // every level.
            coords.sort_unstable_by(|a, b| b.cmp(a));
        }
        coords
    }

    #[inline]
    fn ancestor_key(&self, key: [u64; MAX_DIMS], level: u32) -> [u64; MAX_DIMS] {
        let rel = &self.rel_shifts[level.min(self.depth - 1) as usize];
        [
            key[0] >> rel[0],
            key[1] >> rel[1],
            key[2] >> rel[2],
            key[3] >> rel[3],
        ]
    }

    fn depth(&self) -> u32 {
        self.depth
    }

    fn symmetric(&self) -> bool {
        self.symmetric
    }
}

/// Two-level policy: L1-cache-sized sub-bins nested inside L2-sized
/// parent bins — the depth-2 special case of [`TopologyPolicy`], kept
/// as a named type because it is the configuration the experiment suite
/// ablates and the golden digests pin bit-identically to the
/// pre-topology implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hierarchical {
    inner: TopologyPolicy,
}

impl Hierarchical {
    /// Builds a two-level policy from per-dimension L1 (sub-bin) and
    /// L2 (parent bin) block sizes.
    ///
    /// # Errors
    ///
    /// Returns an error if any block size is zero or not a power of
    /// two, if an L1 block exceeds its dimension's L2 block, or if
    /// `symmetric` is requested with non-uniform block sizes (folding
    /// permutes coordinates across dimensions, which is only meaningful
    /// when every dimension uses the same geometry).
    pub fn new(
        l1_blocks: [u64; MAX_DIMS],
        l2_blocks: [u64; MAX_DIMS],
        symmetric: bool,
    ) -> Result<Self, ConfigError> {
        let inner = TopologyPolicy::new(&[l1_blocks, l2_blocks], symmetric)?;
        Ok(Hierarchical { inner })
    }

    /// Convenience constructor: the same L1 and L2 block size in every
    /// dimension.
    pub fn uniform(l1_block: u64, l2_block: u64, symmetric: bool) -> Result<Self, ConfigError> {
        Hierarchical::new([l1_block; MAX_DIMS], [l2_block; MAX_DIMS], symmetric)
    }
}

impl BinPolicy for Hierarchical {
    #[inline]
    fn bin_key(&mut self, hints: Hints) -> [u64; MAX_DIMS] {
        self.inner.bin_key(hints)
    }

    #[inline]
    fn ancestor_key(&self, key: [u64; MAX_DIMS], level: u32) -> [u64; MAX_DIMS] {
        self.inner.ancestor_key(key, level)
    }

    fn depth(&self) -> u32 {
        2
    }

    fn symmetric(&self) -> bool {
        self.inner.symmetric()
    }
}

/// Degenerate policy: every thread lands in one bin, so the engine
/// drains in fork (FIFO) order. Backs
/// [`FifoScheduler`](crate::FifoScheduler).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SingleBin;

impl BinPolicy for SingleBin {
    #[inline]
    fn bin_key(&mut self, _hints: Hints) -> [u64; MAX_DIMS] {
        [0; MAX_DIMS]
    }

    fn symmetric(&self) -> bool {
        // A constant map is trivially permutation-invariant.
        true
    }
}

/// Degenerate policy: every thread gets its own bin (keys are a fork
/// counter). Combined with [`Tour::Random`](crate::Tour::Random) this
/// shuffles individual threads — backing
/// [`RandomScheduler`](crate::RandomScheduler) bit-identically to the
/// pre-refactor per-thread shuffle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniqueBin {
    next: u64,
}

impl BinPolicy for UniqueBin {
    #[inline]
    fn bin_key(&mut self, _hints: Hints) -> [u64; MAX_DIMS] {
        let key = self.next;
        self.next += 1;
        [key, 0, 0, 0]
    }

    fn always_unique(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    #[test]
    fn paper_block_hash_matches_config_block_coords() {
        for symmetric in [false, true] {
            let cfg = SchedulerConfig::builder()
                .block_sizes([1024, 2048, 4096, 8192])
                .symmetric(symmetric)
                .build()
                .unwrap();
            let mut policy = PaperBlockHash::from_config(&cfg);
            let hints = Hints::three(Addr::new(10_000), Addr::new(70_000), Addr::new(5_000));
            assert_eq!(policy.bin_key(hints), cfg.block_coords(hints));
        }
    }

    #[test]
    fn paper_block_hash_rejects_bad_blocks() {
        assert!(PaperBlockHash::new([0, 1, 1, 1], false).is_err());
        assert!(PaperBlockHash::new([3, 1, 1, 1], false).is_err());
        assert!(PaperBlockHash::new([1024; MAX_DIMS], true).is_ok());
    }

    #[test]
    fn hierarchical_nests_l1_in_l2() {
        let mut policy = Hierarchical::uniform(1 << 10, 1 << 12, false).unwrap();
        assert_eq!(policy.depth(), 2);
        // Two addresses in the same 4 KiB parent but different 1 KiB
        // sub-blocks.
        let a = policy.bin_key(Hints::one(Addr::new(0x1000)));
        let b = policy.bin_key(Hints::one(Addr::new(0x1400)));
        assert_ne!(a, b, "distinct L1 sub-bins");
        assert_eq!(
            policy.ancestor_key(a, 1),
            policy.ancestor_key(b, 1),
            "same L2 parent"
        );
        // A third address in another parent.
        let c = policy.bin_key(Hints::one(Addr::new(0x4000)));
        assert_ne!(policy.ancestor_key(a, 1), policy.ancestor_key(c, 1));
    }

    #[test]
    fn topology_policy_nests_every_level() {
        let mut policy =
            TopologyPolicy::uniform(&[1 << 10, 1 << 12, 1 << 14, 1 << 16], false).unwrap();
        assert_eq!(policy.depth(), 4);
        // Same 64 KiB node, same 16 KiB group, different 4 KiB parents.
        let a = policy.bin_key(Hints::one(Addr::new(0x1000)));
        let b = policy.bin_key(Hints::one(Addr::new(0x2400)));
        assert_ne!(a, b);
        assert_ne!(policy.ancestor_key(a, 1), policy.ancestor_key(b, 1));
        assert_eq!(policy.ancestor_key(a, 2), policy.ancestor_key(b, 2));
        assert_eq!(policy.ancestor_key(a, 3), policy.ancestor_key(b, 3));
        // Level 0 is the key itself; levels beyond the depth saturate.
        assert_eq!(policy.ancestor_key(a, 0), a);
        assert_eq!(policy.ancestor_key(a, 9), policy.ancestor_key(a, 3));
    }

    #[test]
    fn topology_policy_matches_hierarchical_at_depth_2() {
        let mut hier = Hierarchical::uniform(1 << 10, 1 << 13, true).unwrap();
        let mut topo = TopologyPolicy::uniform(&[1 << 10, 1 << 13], true).unwrap();
        for addrs in [(0x1000, 0x9000), (0x9000, 0x1000), (0x123456, 0xffff)] {
            let hints = Hints::two(Addr::new(addrs.0), Addr::new(addrs.1));
            let (hk, tk) = (hier.bin_key(hints), topo.bin_key(hints));
            assert_eq!(hk, tk);
            for level in 0..2 {
                assert_eq!(hier.ancestor_key(hk, level), topo.ancestor_key(tk, level));
            }
        }
        assert_eq!(hier.depth(), topo.depth());
        assert_eq!(hier.symmetric(), topo.symmetric());
    }

    #[test]
    fn topology_policy_validates_geometry() {
        assert!(TopologyPolicy::uniform(&[], false).is_err(), "no levels");
        assert!(
            TopologyPolicy::uniform(&[1 << 12, 1 << 10], false).is_err(),
            "blocks shrink up the levels"
        );
        assert!(TopologyPolicy::uniform(&[0, 1 << 10], false).is_err());
        assert!(TopologyPolicy::uniform(&[3000], false).is_err());
        assert!(
            TopologyPolicy::new(&[[512, 1024, 512, 512], [4096; 4]], true).is_err(),
            "symmetric folding needs uniform blocks"
        );
        let nine: Vec<u64> = (0..9).map(|i| 1u64 << (10 + i)).collect();
        assert!(TopologyPolicy::uniform(&nine, false).is_err(), "too deep");
        assert!(TopologyPolicy::uniform(&[1 << 10], false).is_ok(), "flat");
        // Equal block sizes at adjacent levels are allowed (a level can
        // be a no-op for one dimension).
        assert!(TopologyPolicy::uniform(&[1 << 10, 1 << 10, 1 << 12], false).is_ok());
    }

    #[test]
    fn hierarchical_validates_geometry() {
        assert!(
            Hierarchical::uniform(1 << 12, 1 << 10, false).is_err(),
            "L1 > L2"
        );
        assert!(Hierarchical::uniform(0, 1 << 10, false).is_err());
        assert!(Hierarchical::uniform(3000, 1 << 12, false).is_err());
        assert!(
            Hierarchical::new([512, 1024, 512, 512], [4096; 4], true).is_err(),
            "symmetric folding needs uniform blocks"
        );
        assert!(Hierarchical::uniform(1 << 10, 1 << 12, true).is_ok());
    }

    #[test]
    fn hierarchical_symmetric_folds_at_both_levels() {
        let mut policy = Hierarchical::uniform(1 << 10, 1 << 12, true).unwrap();
        let ab = policy.bin_key(Hints::two(Addr::new(0x1000), Addr::new(0x9000)));
        let ba = policy.bin_key(Hints::two(Addr::new(0x9000), Addr::new(0x1000)));
        assert_eq!(ab, ba);
        assert_eq!(policy.ancestor_key(ab, 1), policy.ancestor_key(ba, 1));
    }

    #[test]
    fn unique_bin_never_repeats() {
        let mut policy = UniqueBin::default();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(policy.bin_key(Hints::none())));
        }
        assert!(policy.always_unique());
    }

    #[test]
    fn single_bin_is_constant() {
        let mut policy = SingleBin;
        assert_eq!(
            policy.bin_key(Hints::one(Addr::new(123))),
            policy.bin_key(Hints::one(Addr::new(1 << 40)))
        );
    }
}

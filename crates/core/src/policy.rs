//! Bin policies: the pluggable hints → bin-key mapping.
//!
//! The paper's engine (hash table, ready list, drain loop) is separate
//! from its *policy* (block sizes, symmetric folding): "the default
//! dimension sizes of the block are set such that their sum are the
//! same as the second-level cache size" (§3.2) is one choice among
//! many. [`BinPolicy`] makes that choice a first-class parameter of the
//! shared bin engine, so every scheduler in this crate — locality,
//! phased, FIFO, random, parallel — is a thin configuration of one
//! engine instead of five copies of the fork/bin/drain loop.
//!
//! Two policies reproduce and extend the paper:
//!
//! * [`PaperBlockHash`] — the paper's mapping, bit-identical to the
//!   pre-refactor `SchedulerConfig::block_coords`: shift each hint by
//!   `log2(block size)`, optionally fold symmetric hints by sorting
//!   coordinates descending.
//! * [`Hierarchical`] — two cache levels: L1-sized *sub-bins* nested
//!   inside L2-sized bins. Threads are binned at L1 granularity; the
//!   engine tours L2-sized parents and drains each parent's sub-bins
//!   back-to-back, so threads sharing an L1 working set run adjacently
//!   *within* the L2-sized groups the paper's policy would have formed.
//!
//! Two degenerate policies express the baselines:
//!
//! * [`SingleBin`] — every thread in one bin (FIFO order).
//! * [`UniqueBin`] — every thread in its own bin (combined with
//!   [`Tour::Random`](crate::Tour::Random), a seeded shuffle).

use crate::config::ConfigError;
use crate::hint::MAX_DIMS;
use crate::{Hints, SchedulerConfig};

/// A policy mapping fork-time [`Hints`] to a bin key in the scheduling
/// space. The bin engine owns everything else (hashing, ready list,
/// tour, drain loop); the policy owns only geometry.
///
/// `bin_key` takes `&mut self` so policies may be stateful (see
/// [`UniqueBin`]); stateless policies simply ignore the mutability.
pub trait BinPolicy: Clone + std::fmt::Debug {
    /// Maps hints to the (finest-level) bin key.
    fn bin_key(&mut self, hints: Hints) -> [u64; MAX_DIMS];

    /// Maps a fine bin key to its enclosing parent key. The engine
    /// tours *parents* and drains each parent's bins contiguously; for
    /// single-level policies this is the identity, so the tour sees
    /// the bin keys themselves.
    fn parent_key(&self, key: [u64; MAX_DIMS]) -> [u64; MAX_DIMS] {
        key
    }

    /// Number of nesting levels (1 = flat, 2 = sub-bins within
    /// parents). The engine only performs parent grouping when this
    /// exceeds 1, keeping flat policies on the paper's exact path.
    fn levels(&self) -> u32 {
        1
    }

    /// Whether this policy folds hint permutations into one bin
    /// (`bin_key` is invariant under reordering of the hint addresses).
    fn symmetric(&self) -> bool {
        false
    }

    /// Whether every `bin_key` call returns a key never seen before.
    /// The engine then appends bins without consulting the hash table,
    /// avoiding quadratic chain walks for per-thread-unique keys.
    fn always_unique(&self) -> bool {
        false
    }
}

/// The paper's policy (§2.3/§3.2): each hint address shifted right by
/// `log2(block size)` for its dimension, with optional symmetric
/// folding (coordinates sorted descending so mirrored hints share a
/// bin). Bit-identical to the pre-refactor `Scheduler` binning — the
/// differential and golden suites pin this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperBlockHash {
    shifts: [u32; MAX_DIMS],
    symmetric: bool,
}

impl PaperBlockHash {
    /// Derives the policy from a [`SchedulerConfig`]'s block sizes and
    /// symmetric flag — the mapping every config-built scheduler uses.
    pub fn from_config(config: &SchedulerConfig) -> Self {
        PaperBlockHash {
            shifts: config.shifts(),
            symmetric: config.symmetric(),
        }
    }

    /// Builds the policy from per-dimension block sizes (each a nonzero
    /// power of two).
    ///
    /// # Errors
    ///
    /// Returns an error if any block size is zero or not a power of
    /// two.
    pub fn new(block_sizes: [u64; MAX_DIMS], symmetric: bool) -> Result<Self, ConfigError> {
        let mut shifts = [0u32; MAX_DIMS];
        for (dim, &size) in block_sizes.iter().enumerate() {
            if size == 0 || !size.is_power_of_two() {
                return Err(ConfigError::new(format!(
                    "block size {size} in dimension {dim} is not a nonzero power of two"
                )));
            }
            shifts[dim] = size.trailing_zeros();
        }
        Ok(PaperBlockHash { shifts, symmetric })
    }
}

impl BinPolicy for PaperBlockHash {
    #[inline]
    fn bin_key(&mut self, hints: Hints) -> [u64; MAX_DIMS] {
        let addrs = hints.as_array();
        let mut coords = [
            addrs[0].raw() >> self.shifts[0],
            addrs[1].raw() >> self.shifts[1],
            addrs[2].raw() >> self.shifts[2],
            addrs[3].raw() >> self.shifts[3],
        ];
        if self.symmetric {
            // Canonicalize the coordinate multiset; descending order
            // keeps null (zero) coordinates in the trailing dimensions.
            coords.sort_unstable_by(|a, b| b.cmp(a));
        }
        coords
    }

    fn symmetric(&self) -> bool {
        self.symmetric
    }
}

/// Two-level policy: L1-cache-sized sub-bins nested inside L2-sized
/// parent bins.
///
/// Threads are keyed at L1 granularity (`addr >> log2(l1 block)`); the
/// parent key truncates the fine key to L2 granularity. The engine
/// tours parents — so inter-group order matches what [`PaperBlockHash`]
/// with L2 blocks would produce — and drains each parent's sub-bins in
/// sorted fine-key order, running threads that share an L1-sized
/// working set back-to-back. This is the "hierarchy level as a
/// scheduling parameter" extension (compare bubble scheduling over the
/// cache hierarchy): L2 capacity misses are avoided by the parent
/// grouping exactly as in the paper, and L1 capacity misses shrink
/// because the within-parent order is no longer arbitrary ("the
/// scheduling order of threads in the same bin can be arbitrary",
/// §2.3 — here it is chosen to be L1-local).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hierarchical {
    l1_shifts: [u32; MAX_DIMS],
    /// Per-dimension `log2(l2 block) - log2(l1 block)`: how many fine
    /// coordinate bits a parent key truncates.
    rel_shifts: [u32; MAX_DIMS],
    symmetric: bool,
}

impl Hierarchical {
    /// Builds a two-level policy from per-dimension L1 (sub-bin) and
    /// L2 (parent bin) block sizes.
    ///
    /// # Errors
    ///
    /// Returns an error if any block size is zero or not a power of
    /// two, if an L1 block exceeds its dimension's L2 block, or if
    /// `symmetric` is requested with non-uniform block sizes (folding
    /// permutes coordinates across dimensions, which is only meaningful
    /// when every dimension uses the same geometry).
    pub fn new(
        l1_blocks: [u64; MAX_DIMS],
        l2_blocks: [u64; MAX_DIMS],
        symmetric: bool,
    ) -> Result<Self, ConfigError> {
        let mut l1_shifts = [0u32; MAX_DIMS];
        let mut rel_shifts = [0u32; MAX_DIMS];
        for dim in 0..MAX_DIMS {
            let (l1, l2) = (l1_blocks[dim], l2_blocks[dim]);
            for size in [l1, l2] {
                if size == 0 || !size.is_power_of_two() {
                    return Err(ConfigError::new(format!(
                        "block size {size} in dimension {dim} is not a nonzero power of two"
                    )));
                }
            }
            if l1 > l2 {
                return Err(ConfigError::new(format!(
                    "L1 block {l1} exceeds L2 block {l2} in dimension {dim}"
                )));
            }
            l1_shifts[dim] = l1.trailing_zeros();
            rel_shifts[dim] = l2.trailing_zeros() - l1.trailing_zeros();
        }
        if symmetric
            && (l1_blocks.windows(2).any(|w| w[0] != w[1])
                || rel_shifts.windows(2).any(|w| w[0] != w[1]))
        {
            return Err(ConfigError::new(
                "symmetric folding requires uniform block sizes across dimensions",
            ));
        }
        Ok(Hierarchical {
            l1_shifts,
            rel_shifts,
            symmetric,
        })
    }

    /// Convenience constructor: the same L1 and L2 block size in every
    /// dimension.
    pub fn uniform(l1_block: u64, l2_block: u64, symmetric: bool) -> Result<Self, ConfigError> {
        Hierarchical::new([l1_block; MAX_DIMS], [l2_block; MAX_DIMS], symmetric)
    }
}

impl BinPolicy for Hierarchical {
    #[inline]
    fn bin_key(&mut self, hints: Hints) -> [u64; MAX_DIMS] {
        let addrs = hints.as_array();
        let mut coords = [
            addrs[0].raw() >> self.l1_shifts[0],
            addrs[1].raw() >> self.l1_shifts[1],
            addrs[2].raw() >> self.l1_shifts[2],
            addrs[3].raw() >> self.l1_shifts[3],
        ];
        if self.symmetric {
            // Shifting is monotone, so descending fine keys yield
            // descending parent keys: folding stays consistent across
            // both levels.
            coords.sort_unstable_by(|a, b| b.cmp(a));
        }
        coords
    }

    #[inline]
    fn parent_key(&self, key: [u64; MAX_DIMS]) -> [u64; MAX_DIMS] {
        [
            key[0] >> self.rel_shifts[0],
            key[1] >> self.rel_shifts[1],
            key[2] >> self.rel_shifts[2],
            key[3] >> self.rel_shifts[3],
        ]
    }

    fn levels(&self) -> u32 {
        2
    }

    fn symmetric(&self) -> bool {
        self.symmetric
    }
}

/// Degenerate policy: every thread lands in one bin, so the engine
/// drains in fork (FIFO) order. Backs
/// [`FifoScheduler`](crate::FifoScheduler).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SingleBin;

impl BinPolicy for SingleBin {
    #[inline]
    fn bin_key(&mut self, _hints: Hints) -> [u64; MAX_DIMS] {
        [0; MAX_DIMS]
    }

    fn symmetric(&self) -> bool {
        // A constant map is trivially permutation-invariant.
        true
    }
}

/// Degenerate policy: every thread gets its own bin (keys are a fork
/// counter). Combined with [`Tour::Random`](crate::Tour::Random) this
/// shuffles individual threads — backing
/// [`RandomScheduler`](crate::RandomScheduler) bit-identically to the
/// pre-refactor per-thread shuffle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniqueBin {
    next: u64,
}

impl BinPolicy for UniqueBin {
    #[inline]
    fn bin_key(&mut self, _hints: Hints) -> [u64; MAX_DIMS] {
        let key = self.next;
        self.next += 1;
        [key, 0, 0, 0]
    }

    fn always_unique(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    #[test]
    fn paper_block_hash_matches_config_block_coords() {
        for symmetric in [false, true] {
            let cfg = SchedulerConfig::builder()
                .block_sizes([1024, 2048, 4096, 8192])
                .symmetric(symmetric)
                .build()
                .unwrap();
            let mut policy = PaperBlockHash::from_config(&cfg);
            let hints = Hints::three(Addr::new(10_000), Addr::new(70_000), Addr::new(5_000));
            assert_eq!(policy.bin_key(hints), cfg.block_coords(hints));
        }
    }

    #[test]
    fn paper_block_hash_rejects_bad_blocks() {
        assert!(PaperBlockHash::new([0, 1, 1, 1], false).is_err());
        assert!(PaperBlockHash::new([3, 1, 1, 1], false).is_err());
        assert!(PaperBlockHash::new([1024; MAX_DIMS], true).is_ok());
    }

    #[test]
    fn hierarchical_nests_l1_in_l2() {
        let mut policy = Hierarchical::uniform(1 << 10, 1 << 12, false).unwrap();
        assert_eq!(policy.levels(), 2);
        // Two addresses in the same 4 KiB parent but different 1 KiB
        // sub-blocks.
        let a = policy.bin_key(Hints::one(Addr::new(0x1000)));
        let b = policy.bin_key(Hints::one(Addr::new(0x1400)));
        assert_ne!(a, b, "distinct L1 sub-bins");
        assert_eq!(policy.parent_key(a), policy.parent_key(b), "same L2 parent");
        // A third address in another parent.
        let c = policy.bin_key(Hints::one(Addr::new(0x4000)));
        assert_ne!(policy.parent_key(a), policy.parent_key(c));
    }

    #[test]
    fn hierarchical_validates_geometry() {
        assert!(
            Hierarchical::uniform(1 << 12, 1 << 10, false).is_err(),
            "L1 > L2"
        );
        assert!(Hierarchical::uniform(0, 1 << 10, false).is_err());
        assert!(Hierarchical::uniform(3000, 1 << 12, false).is_err());
        assert!(
            Hierarchical::new([512, 1024, 512, 512], [4096; 4], true).is_err(),
            "symmetric folding needs uniform blocks"
        );
        assert!(Hierarchical::uniform(1 << 10, 1 << 12, true).is_ok());
    }

    #[test]
    fn hierarchical_symmetric_folds_at_both_levels() {
        let mut policy = Hierarchical::uniform(1 << 10, 1 << 12, true).unwrap();
        let ab = policy.bin_key(Hints::two(Addr::new(0x1000), Addr::new(0x9000)));
        let ba = policy.bin_key(Hints::two(Addr::new(0x9000), Addr::new(0x1000)));
        assert_eq!(ab, ba);
        assert_eq!(policy.parent_key(ab), policy.parent_key(ba));
    }

    #[test]
    fn unique_bin_never_repeats() {
        let mut policy = UniqueBin::default();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(policy.bin_key(Hints::none())));
        }
        assert!(policy.always_unique());
    }

    #[test]
    fn single_bin_is_constant() {
        let mut policy = SingleBin;
        assert_eq!(
            policy.bin_key(Hints::one(Addr::new(123))),
            policy.bin_key(Hints::one(Addr::new(1 << 40)))
        );
    }
}

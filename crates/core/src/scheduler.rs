//! The locality scheduler (paper §2.3, §3).

use crate::stats::{RunStats, SchedulerStats};
use crate::table::BinTable;
use crate::{Hints, SchedulerConfig};
use memtrace::{Addr, TraceSink};

/// A thread body: a plain function pointer taking the shared context
/// and the two word-sized arguments supplied at fork time — the same
/// record layout as the paper's `th_fork(f, arg1, arg2, …)`.
///
/// Keeping bodies as `fn` pointers (not closures) keeps a thread record
/// at three words, so forking cannot allocate per thread or touch
/// unbounded memory — a precondition of the paper's claim that "thread
/// creation doesn't cause cache misses". For an ergonomic closure-based
/// front end accepting captures, see
/// [`ClosureScheduler`](crate::ClosureScheduler).
pub type ThreadFn<C> = fn(&mut C, usize, usize);

/// What `run` does with the thread specifications afterwards, mirroring
/// the paper's `th_run(keep)` flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Destroy the thread specifications after running (paper:
    /// `keep = 0`).
    Consume,
    /// Retain the specifications so the same schedule can be re-run
    /// (paper: `keep != 0`; used by iterative solvers that re-execute
    /// an identical sweep every iteration).
    Retain,
}

/// One scheduled thread: function pointer plus two arguments.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ThreadSpec<C> {
    pub(crate) func: ThreadFn<C>,
    pub(crate) arg1: usize,
    pub(crate) arg2: usize,
}

/// Threads per thread-group chunk. "The thread group data structure
/// represents a number of threads within a bin; by grouping threads
/// together in this way, amortization reduces the cost of thread
/// structure management" (§3.2).
const GROUP_CAPACITY: usize = 256;

/// One thread group: a chunk of thread records plus the synthetic
/// address of its storage (null when package-memory tracing is off).
#[derive(Clone, Debug)]
struct Group<C> {
    specs: Vec<ThreadSpec<C>>,
    base: Addr,
}

/// A bin: the chain of thread groups for one block of the scheduling
/// space.
#[derive(Clone, Debug)]
struct Bin<C> {
    groups: Vec<Group<C>>,
    threads: u64,
    /// Synthetic address of the bin record (null when tracing is off).
    header: Addr,
}

impl<C> Bin<C> {
    fn new(header: Addr) -> Self {
        Bin {
            groups: Vec::new(),
            threads: 0,
            header,
        }
    }
}

/// Bytes of one thread record: function pointer + two word arguments
/// (the paper's three-word spec).
const SPEC_BYTES: u64 = 24;
/// Bytes of a bin record: "three link fields and a search key" (§3.2).
const BIN_HEADER_BYTES: u64 = 48;
/// Bytes of a thread-group header: count + next pointer.
const GROUP_HEADER_BYTES: u64 = 16;
/// Bytes of one hash bucket (a pointer).
const BUCKET_BYTES: u64 = 8;

/// Synthetic addresses for the package's own data structures, so their
/// cache traffic shows up in traces (Pixie instrumented the thread
/// package along with the application — the visible difference between
/// the paper's threaded and cache-conscious PDE columns in Table 5).
#[derive(Clone, Debug)]
struct MetaTrace {
    /// The hash table's bucket array.
    table_base: Addr,
    /// Bump pointer for bin records and thread groups, mimicking an
    /// arena allocator.
    bump: Addr,
    arena_base: Addr,
    end: Addr,
}

/// Probe observations for one scheduler instance, cumulative across
/// runs. Kept out of [`RunStats`]/[`SchedulerStats`] so the always-on
/// statistics stay byte-identical whether or not probes are compiled
/// in; flushed on demand by [`Scheduler::run_profile`].
#[derive(Clone, Debug, Default)]
struct SchedObs {
    /// Threads forked.
    forks: probe::LocalCounter,
    /// Forks that allocated a new bin.
    bins_created: probe::LocalCounter,
    /// Forks whose hint mapped to an already-existing bin — the
    /// hint-to-bin reuse the locality win depends on.
    rebin_hits: probe::LocalCounter,
    /// Thread count of each bin drained by `run`/`run_traced`.
    bin_occupancy: probe::Histogram,
    /// Wall time to drain one bin.
    bin_drain_ns: probe::Histogram,
    /// Wall time of one whole `run`/`run_traced` call (turnaround).
    run_ns: probe::Histogram,
}

impl MetaTrace {
    fn alloc(&mut self, bytes: u64) -> Addr {
        let addr = self.bump;
        assert!(
            addr.raw() + bytes <= self.end.raw(),
            "scheduler meta-trace region exhausted"
        );
        self.bump = addr + bytes;
        addr
    }
}

/// A scheduler that can fork run-to-completion threads and run them in
/// some order. Implemented by the locality [`Scheduler`] and by the
/// [`FifoScheduler`](crate::FifoScheduler) /
/// [`RandomScheduler`](crate::RandomScheduler) baselines, so
/// experiments can swap policies generically.
pub trait ThreadScheduler<C> {
    /// Creates and schedules a thread to call `func(ctx, arg1, arg2)`.
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, hints: Hints);

    /// Runs all scheduled threads and returns what ran.
    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats;

    /// Number of threads currently scheduled.
    fn pending(&self) -> u64;
}

/// The hint-based locality scheduler.
///
/// Threads are placed into bins by their block coordinates (hint
/// address ÷ block size per dimension); [`run`](Scheduler::run) visits
/// bins along the configured [`Tour`](crate::Tour) — allocation order
/// by default, as in the paper — draining each bin completely. Threads
/// within a bin run in fork order ("the scheduling order of threads in
/// the same bin can be arbitrary", §2.3).
///
/// See the [crate docs](crate) for a complete example.
#[derive(Clone, Debug)]
pub struct Scheduler<C> {
    config: SchedulerConfig,
    table: BinTable,
    bins: Vec<Bin<C>>,
    threads: u64,
    meta: Option<MetaTrace>,
    obs: SchedObs,
}

impl<C> Scheduler<C> {
    /// Creates an empty scheduler (the paper's `th_init`).
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            table: BinTable::new(config.hash_size()),
            bins: Vec::new(),
            threads: 0,
            config,
            meta: None,
            obs: SchedObs::default(),
        }
    }

    /// Enables tracing of the package's *own* memory traffic through
    /// [`fork_traced`](Self::fork_traced) /
    /// [`run_traced`](Self::run_traced): hash-bucket probes, bin
    /// records, and thread-group reads/writes are emitted at synthetic
    /// addresses, the way Pixie's whole-binary instrumentation captured
    /// the paper's package.
    ///
    /// The package region lives at a fixed high address (as an mmap'd
    /// allocator's would), far above `memtrace::AddressSpace` data
    /// regions; successive scheduler instances therefore *reuse* the
    /// same region, exactly like the real package reusing its heap
    /// across iterations.
    pub fn trace_package_memory(&mut self) {
        /// Fixed base of the package's synthetic memory.
        const PACKAGE_BASE: u64 = 0x7f00_0000_0000;
        let buckets = (self.config.hash_size() as u64).pow(4) * BUCKET_BYTES;
        let table_base = Addr::new(PACKAGE_BASE);
        let bump = (table_base + buckets).align_up(128);
        // A generous arena for bin records and thread groups; synthetic
        // addresses cost nothing to reserve.
        let arena = 1u64 << 30;
        self.meta = Some(MetaTrace {
            table_base,
            bump,
            arena_base: bump,
            end: bump + arena,
        });
    }

    /// Creates a scheduler with the default configuration.
    pub fn with_defaults() -> Self {
        Scheduler::new(SchedulerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Replaces the configuration — the paper's `th_init` "can be
    /// called more than once to change those sizes".
    ///
    /// # Errors
    ///
    /// Returns the scheduler's pending thread count if threads are
    /// scheduled: bins cannot be re-derived without the original hints,
    /// so reconfiguration is only possible while empty (between runs),
    /// which is when the paper's interface allowed it too.
    pub fn reconfigure(&mut self, config: SchedulerConfig) -> Result<(), u64> {
        if self.threads > 0 {
            return Err(self.threads);
        }
        self.table = BinTable::new(config.hash_size());
        self.bins.clear();
        self.config = config;
        // The synthetic hash-table region was sized for the old
        // configuration; re-enable tracing afterwards if needed.
        self.meta = None;
        Ok(())
    }

    /// Creates and schedules a thread to call `func(ctx, arg1, arg2)`,
    /// binned by `hints` (the paper's `th_fork`).
    #[inline]
    pub fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, hints: Hints) {
        self.fork_traced(func, arg1, arg2, hints, &mut memtrace::NullSink);
    }

    /// Like [`fork`](Self::fork), additionally emitting the package's
    /// own memory references into `sink` if
    /// [`trace_package_memory`](Self::trace_package_memory) was called:
    /// the hash-bucket probe, the thread-record store, and the
    /// bin-header update.
    #[inline]
    pub fn fork_traced<S: TraceSink>(
        &mut self,
        func: ThreadFn<C>,
        arg1: usize,
        arg2: usize,
        hints: Hints,
        sink: &mut S,
    ) {
        let key = self.config.block_coords(hints);
        let (id, created) = self.table.lookup_or_insert(key);
        self.obs.forks.incr();
        if created {
            self.obs.bins_created.incr();
        } else {
            self.obs.rebin_hits.incr();
        }
        if let Some(meta) = &mut self.meta {
            // Hash probe.
            let bucket = self.table.bucket_index(key) as u64;
            sink.read(meta.table_base + bucket * BUCKET_BYTES, BUCKET_BYTES as u32);
        }
        if created {
            let header = match &mut self.meta {
                Some(meta) => {
                    let header = meta.alloc(BIN_HEADER_BYTES);
                    // Initialize the bin record and link it into the
                    // bucket chain and the ready list.
                    sink.write(header, BIN_HEADER_BYTES as u32);
                    header
                }
                None => Addr::NULL,
            };
            self.bins.push(Bin::new(header));
        }
        let bin = &mut self.bins[id as usize];
        let needs_group = match bin.groups.last() {
            Some(group) => group.specs.len() >= GROUP_CAPACITY,
            None => true,
        };
        if needs_group {
            let base = match &mut self.meta {
                Some(meta) => {
                    let base = meta.alloc(GROUP_HEADER_BYTES + GROUP_CAPACITY as u64 * SPEC_BYTES);
                    sink.write(base, GROUP_HEADER_BYTES as u32);
                    base
                }
                None => Addr::NULL,
            };
            bin.groups.push(Group {
                specs: Vec::with_capacity(GROUP_CAPACITY),
                base,
            });
        }
        let group = bin.groups.last_mut().expect("group just ensured");
        let slot = group.specs.len() as u64;
        group.specs.push(ThreadSpec { func, arg1, arg2 });
        if self.meta.is_some() {
            // Store the three-word thread record and bump the group's
            // count field.
            sink.write(
                group.base + GROUP_HEADER_BYTES + slot * SPEC_BYTES,
                SPEC_BYTES as u32,
            );
            sink.write(group.base, 8);
        }
        bin.threads += 1;
        self.threads += 1;
    }

    /// Runs every scheduled thread, visiting bins in tour order and
    /// draining each bin before moving on (the paper's `th_run`).
    ///
    /// With [`RunMode::Retain`] the schedule survives and can be re-run
    /// (or extended with further forks); with [`RunMode::Consume`] the
    /// scheduler is left empty.
    pub fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        let order = self.config.tour().order(self.table.keys());
        let mut threads_run = 0u64;
        let mut bins_visited = 0usize;
        {
            let _run_span = self.obs.run_ns.span();
            for id in order {
                let bin = &self.bins[id as usize];
                if bin.threads == 0 {
                    continue;
                }
                bins_visited += 1;
                self.obs.bin_occupancy.record(bin.threads);
                let _drain_span = self.obs.bin_drain_ns.span();
                for group in &bin.groups {
                    for spec in &group.specs {
                        (spec.func)(ctx, spec.arg1, spec.arg2);
                    }
                }
                threads_run += bin.threads;
            }
        }
        if mode == RunMode::Consume {
            self.clear();
        }
        RunStats {
            threads_run,
            bins_visited,
        }
    }

    /// Like [`run`](Self::run), additionally emitting the package's
    /// dispatch-time memory references (ready-list walk, bin headers,
    /// thread-record loads) if
    /// [`trace_package_memory`](Self::trace_package_memory) was called.
    ///
    /// `sink_of` borrows the sink out of the context between thread
    /// invocations (thread bodies usually own the sink through the same
    /// context).
    pub fn run_traced<S, F>(&mut self, ctx: &mut C, mode: RunMode, mut sink_of: F) -> RunStats
    where
        S: TraceSink,
        F: FnMut(&mut C) -> &mut S,
    {
        let order = self.config.tour().order(self.table.keys());
        let tracing = self.meta.is_some();
        let mut threads_run = 0u64;
        let mut bins_visited = 0usize;
        {
            let _run_span = self.obs.run_ns.span();
            for id in order {
                let bin = &self.bins[id as usize];
                if bin.threads == 0 {
                    continue;
                }
                bins_visited += 1;
                self.obs.bin_occupancy.record(bin.threads);
                let _drain_span = self.obs.bin_drain_ns.span();
                if tracing {
                    // Ready-list step: load the bin record.
                    sink_of(ctx).read(bin.header, BIN_HEADER_BYTES as u32);
                }
                for group in &bin.groups {
                    if tracing {
                        // Group header: count + next pointer.
                        sink_of(ctx).read(group.base, GROUP_HEADER_BYTES as u32);
                    }
                    for (slot, spec) in group.specs.iter().enumerate() {
                        if tracing {
                            sink_of(ctx).read(
                                group.base + GROUP_HEADER_BYTES + slot as u64 * SPEC_BYTES,
                                SPEC_BYTES as u32,
                            );
                        }
                        (spec.func)(ctx, spec.arg1, spec.arg2);
                    }
                }
                threads_run += bin.threads;
            }
        }
        if mode == RunMode::Consume {
            self.clear();
        }
        RunStats {
            threads_run,
            bins_visited,
        }
    }

    /// Number of threads currently scheduled.
    pub fn pending(&self) -> u64 {
        self.threads
    }

    /// Number of bins currently allocated.
    pub fn bins(&self) -> usize {
        self.table.len()
    }

    /// Distribution statistics over the current schedule (the paper
    /// reports these per benchmark: threads, bins, threads per bin).
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats::from_bin_counts(self.bins.iter().map(|b| b.threads).collect())
    }

    /// Flushes the probe observations accumulated so far (forks, bin
    /// creation vs. reuse, bin occupancy/drain times, run turnaround)
    /// into a `"sched"` profile section. Cumulative across runs; with
    /// the probe layer compiled out (see [`probe::enabled`]) every
    /// counter reads zero and every histogram is empty.
    pub fn run_profile(&self) -> probe::Section {
        let mut section = probe::Section::new("sched");
        section
            .counter("forks", self.obs.forks.get())
            .counter("bins_created", self.obs.bins_created.get())
            .counter("rebin_hits", self.obs.rebin_hits.get())
            .histogram("bin_occupancy", &self.obs.bin_occupancy)
            .histogram("bin_drain_ns", &self.obs.bin_drain_ns)
            .histogram("run_ns", &self.obs.run_ns);
        section
    }

    /// Removes all scheduled threads and bins (the arena of a traced
    /// package is recycled, as a real allocator would).
    pub fn clear(&mut self) {
        self.table.clear();
        self.bins.clear();
        self.threads = 0;
        if let Some(meta) = &mut self.meta {
            meta.bump = meta.arena_base;
        }
    }
}

impl<C> ThreadScheduler<C> for Scheduler<C> {
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, hints: Hints) {
        Scheduler::fork(self, func, arg1, arg2, hints);
    }

    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        Scheduler::run(self, ctx, mode)
    }

    fn pending(&self) -> u64 {
        Scheduler::pending(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    type Log = Vec<(usize, usize)>;

    fn record(log: &mut Log, a: usize, b: usize) {
        log.push((a, b));
    }

    fn config(block: u64) -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(block)
            .build()
            .unwrap()
    }

    #[test]
    fn runs_every_thread_exactly_once() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..100 {
            sched.fork(record, i, i * 2, Hints::one(Addr::new((i as u64) * 333)));
        }
        assert_eq!(sched.pending(), 100);
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 100);
        assert_eq!(log.len(), 100);
        let mut seen: Vec<usize> = log.iter().map(|&(a, _)| a).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn threads_with_same_block_run_adjacently() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        // Interleave forks into two far-apart blocks.
        for i in 0..10 {
            sched.fork(record, 0, i, Hints::one(Addr::new(0)));
            sched.fork(record, 1, i, Hints::one(Addr::new(1 << 30)));
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        // All block-0 threads must precede all block-1 threads
        // (allocation order: block 0 was allocated first).
        let first_of_b1 = log.iter().position(|&(a, _)| a == 1).unwrap();
        assert!(log[..first_of_b1].iter().all(|&(a, _)| a == 0));
        assert_eq!(
            log[first_of_b1..].iter().filter(|&&(a, _)| a == 1).count(),
            10
        );
    }

    #[test]
    fn within_bin_order_is_fork_order() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..(GROUP_CAPACITY * 2 + 7) {
            sched.fork(record, i, 0, Hints::one(Addr::new(4)));
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        let order: Vec<usize> = log.iter().map(|&(a, _)| a).collect();
        assert_eq!(order, (0..GROUP_CAPACITY * 2 + 7).collect::<Vec<_>>());
    }

    #[test]
    fn retain_re_runs_the_same_schedule() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..5 {
            sched.fork(record, i, 0, Hints::one(Addr::new(i as u64 * 10_000)));
        }
        let mut log = Log::new();
        let s1 = sched.run(&mut log, RunMode::Retain);
        assert_eq!(sched.pending(), 5, "retained");
        let s2 = sched.run(&mut log, RunMode::Consume);
        assert_eq!(s1.threads_run, s2.threads_run);
        assert_eq!(log.len(), 10);
        assert_eq!(&log[..5], &log[5..], "identical re-execution");
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn paper_2_4_example_binning() {
        // 4x4 matmul, cache = 4 vectors, block dim = half the cache:
        // threads (i,j) with hints (a_i, b_j) fall into 4 bins of 4.
        let vec_bytes = 1024u64;
        let a_base = 0u64; // A's columns at 0..4*vec_bytes
        let b_base = 1 << 20; // B's columns elsewhere
        let cfg = SchedulerConfig::builder()
            .block_size(2 * vec_bytes)
            .build()
            .unwrap();
        let mut sched: Scheduler<Log> = Scheduler::new(cfg);
        for i in 0..4usize {
            for j in 0..4usize {
                sched.fork(
                    record,
                    i,
                    j,
                    Hints::two(
                        Addr::new(a_base + i as u64 * vec_bytes),
                        Addr::new(b_base + j as u64 * vec_bytes),
                    ),
                );
            }
        }
        assert_eq!(sched.bins(), 4);
        let stats = sched.stats();
        assert_eq!(stats.max_threads_per_bin(), 4);
        assert_eq!(stats.min_threads_per_bin(), 4);
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        // Each consecutive run of 4 threads shares the bin's two vector
        // pairs: i in {0,1} x j in {0,1}, etc.
        for chunk in log.chunks(4) {
            let i_block = chunk[0].0 / 2;
            let j_block = chunk[0].1 / 2;
            for &(i, j) in chunk {
                assert_eq!(i / 2, i_block);
                assert_eq!(j / 2, j_block);
            }
        }
    }

    #[test]
    fn symmetric_config_folds_mirrored_hints() {
        let cfg = SchedulerConfig::builder()
            .block_size(1024)
            .symmetric(true)
            .build()
            .unwrap();
        let mut sched: Scheduler<Log> = Scheduler::new(cfg);
        sched.fork(record, 0, 0, Hints::two(Addr::new(0), Addr::new(1 << 20)));
        sched.fork(record, 1, 0, Hints::two(Addr::new(1 << 20), Addr::new(0)));
        assert_eq!(sched.bins(), 1, "mirrored hints share a bin");
    }

    #[test]
    fn no_hint_threads_run_in_fork_order() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..10 {
            sched.fork(record, i, 0, Hints::none());
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        assert_eq!(
            log.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_on_empty_scheduler_is_a_noop() {
        let mut sched: Scheduler<Log> = Scheduler::with_defaults();
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 0);
        assert_eq!(stats.bins_visited, 0);
        assert!(log.is_empty());
    }

    #[test]
    fn fork_after_consume_starts_fresh() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        sched.fork(record, 0, 0, Hints::one(Addr::new(0)));
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        sched.fork(record, 1, 1, Hints::one(Addr::new(0)));
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 1);
        assert_eq!(log, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn package_memory_tracing_emits_references() {
        use memtrace::CountingSink;
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        sched.trace_package_memory();
        let mut fork_sink = CountingSink::new();
        for i in 0..10 {
            sched.fork_traced(
                record,
                i,
                0,
                Hints::one(Addr::new(i as u64 * 100_000)),
                &mut fork_sink,
            );
        }
        // Per fork: bucket probe (read) + spec store + count bump; per
        // new bin: header init; per new group: header init.
        assert_eq!(fork_sink.reads(), 10, "one hash probe per fork");
        assert_eq!(
            fork_sink.writes(),
            10 * 2 + 10 + 10,
            "records+counts+bins+groups"
        );

        struct Ctx {
            log: Log,
            sink: CountingSink,
        }
        fn traced_record(ctx: &mut Ctx, a: usize, b: usize) {
            ctx.log.push((a, b));
        }
        let mut sched2: Scheduler<Ctx> = Scheduler::new(config(1024));
        sched2.trace_package_memory();
        let mut fork_sink = CountingSink::new();
        for i in 0..10 {
            sched2.fork_traced(
                traced_record,
                i,
                0,
                Hints::one(Addr::new(i as u64 * 100_000)),
                &mut fork_sink,
            );
        }
        let mut ctx = Ctx {
            log: Log::new(),
            sink: CountingSink::new(),
        };
        let stats = sched2.run_traced(&mut ctx, RunMode::Consume, |c| &mut c.sink);
        assert_eq!(stats.threads_run, 10);
        assert_eq!(ctx.log.len(), 10);
        // Per bin: header read + group header read; per thread: one
        // record read. 10 bins here (distinct blocks).
        assert_eq!(ctx.sink.reads(), 10 + 10 + 10);
    }

    #[test]
    fn tracing_disabled_emits_nothing() {
        use memtrace::CountingSink;
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        let mut sink = CountingSink::new();
        sched.fork_traced(record, 0, 0, Hints::none(), &mut sink);
        assert_eq!(sink.data_references(), 0);
    }

    #[test]
    fn reconfigure_between_runs() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        sched.fork(record, 0, 0, Hints::one(Addr::new(5000)));
        // Occupied: reconfiguration refused, count reported.
        assert_eq!(sched.reconfigure(config(4096)), Err(1));
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        // Empty: accepted, and the new block size takes effect.
        assert_eq!(sched.reconfigure(config(1 << 16)), Ok(()));
        sched.fork(record, 0, 0, Hints::one(Addr::new(0)));
        sched.fork(record, 1, 0, Hints::one(Addr::new(5000)));
        assert_eq!(sched.bins(), 1, "5000 < 64 KiB: same block now");
    }

    #[test]
    fn trait_object_compatible_generics() {
        fn drive<S: ThreadScheduler<Log>>(sched: &mut S) -> u64 {
            sched.fork(record, 7, 7, Hints::none());
            let mut log = Log::new();
            sched.run(&mut log, RunMode::Consume).threads_run
        }
        let mut sched: Scheduler<Log> = Scheduler::with_defaults();
        assert_eq!(drive(&mut sched), 1);
    }
}

//! The locality scheduler (paper §2.3, §3), expressed over the shared
//! [`BinEngine`](crate::engine::BinEngine).

use crate::engine::BinEngine;
use crate::policy::{BinPolicy, PaperBlockHash};
use crate::stats::{RunStats, SchedulerStats};
use crate::{Hints, SchedulerConfig};
use memtrace::TraceSink;

/// A thread body: a plain function pointer taking the shared context
/// and the two word-sized arguments supplied at fork time — the same
/// record layout as the paper's `th_fork(f, arg1, arg2, …)`.
///
/// Keeping bodies as `fn` pointers (not closures) keeps a thread record
/// at three words, so forking cannot allocate per thread or touch
/// unbounded memory — a precondition of the paper's claim that "thread
/// creation doesn't cause cache misses". For an ergonomic closure-based
/// front end accepting captures, see
/// [`ClosureScheduler`](crate::ClosureScheduler).
pub type ThreadFn<C> = fn(&mut C, usize, usize);

/// What `run` does with the thread specifications afterwards, mirroring
/// the paper's `th_run(keep)` flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Destroy the thread specifications after running (paper:
    /// `keep = 0`).
    Consume,
    /// Retain the specifications so the same schedule can be re-run
    /// (paper: `keep != 0`; used by iterative solvers that re-execute
    /// an identical sweep every iteration).
    Retain,
}

/// One scheduled thread: function pointer plus two arguments.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ThreadSpec<C> {
    pub(crate) func: ThreadFn<C>,
    pub(crate) arg1: usize,
    pub(crate) arg2: usize,
}

/// A scheduler that can fork run-to-completion threads and run them in
/// some order. Implemented by the locality [`Scheduler`] and by the
/// [`FifoScheduler`](crate::FifoScheduler) /
/// [`RandomScheduler`](crate::RandomScheduler) baselines, so
/// experiments can swap policies generically.
pub trait ThreadScheduler<C> {
    /// Creates and schedules a thread to call `func(ctx, arg1, arg2)`.
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, hints: Hints);

    /// Runs all scheduled threads and returns what ran.
    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats;

    /// Number of threads currently scheduled.
    fn pending(&self) -> u64;
}

/// The hint-based locality scheduler.
///
/// Threads are placed into bins by the configured [`BinPolicy`]
/// (default [`PaperBlockHash`]: hint address ÷ block size per
/// dimension, the paper's mapping); [`run`](Scheduler::run) visits
/// bins along the configured [`Tour`](crate::Tour) — allocation order
/// by default, as in the paper — draining each bin completely. Threads
/// within a bin run in fork order ("the scheduling order of threads in
/// the same bin can be arbitrary", §2.3). A two-level policy
/// ([`Hierarchical`](crate::Hierarchical)) additionally orders each
/// parent bin's L1-sized sub-bins so threads sharing an L1 working set
/// run back-to-back.
///
/// See the [crate docs](crate) for a complete example.
#[derive(Clone, Debug)]
pub struct Scheduler<C, P = PaperBlockHash> {
    config: SchedulerConfig,
    engine: BinEngine<ThreadSpec<C>, P>,
}

impl<C> Scheduler<C> {
    /// Creates an empty scheduler (the paper's `th_init`) using the
    /// paper's binning policy derived from `config`.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler::with_policy(config, PaperBlockHash::from_config(&config))
    }

    /// Creates a scheduler with the default configuration.
    pub fn with_defaults() -> Self {
        Scheduler::new(SchedulerConfig::default())
    }

    /// Replaces the configuration — the paper's `th_init` "can be
    /// called more than once to change those sizes".
    ///
    /// # Errors
    ///
    /// Returns the scheduler's pending thread count if threads are
    /// scheduled: bins cannot be re-derived without the original hints,
    /// so reconfiguration is only possible while empty (between runs),
    /// which is when the paper's interface allowed it too.
    pub fn reconfigure(&mut self, config: SchedulerConfig) -> Result<(), u64> {
        self.reconfigure_with(config, PaperBlockHash::from_config(&config))
    }
}

impl<C, P: BinPolicy> Scheduler<C, P> {
    /// Creates an empty scheduler binning with an explicit `policy`;
    /// `config` still supplies the hash-table size and the tour.
    pub fn with_policy(config: SchedulerConfig, policy: P) -> Self {
        Scheduler {
            engine: BinEngine::new(config.hash_size(), config.tour(), policy),
            config,
        }
    }

    /// Enables tracing of the package's *own* memory traffic through
    /// [`fork_traced`](Self::fork_traced) /
    /// [`run_traced`](Self::run_traced): hash-bucket probes, bin
    /// records, and thread-group reads/writes are emitted at synthetic
    /// addresses, the way Pixie's whole-binary instrumentation captured
    /// the paper's package.
    ///
    /// The package region lives at a fixed high address (as an mmap'd
    /// allocator's would), far above `memtrace::AddressSpace` data
    /// regions; successive scheduler instances therefore *reuse* the
    /// same region, exactly like the real package reusing its heap
    /// across iterations.
    pub fn trace_package_memory(&mut self) {
        self.engine.trace_package_memory();
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The active binning policy.
    pub fn policy(&self) -> &P {
        self.engine.policy()
    }

    /// Like [`reconfigure`](Scheduler::reconfigure) with an explicit
    /// replacement policy.
    ///
    /// # Errors
    ///
    /// Returns the pending thread count if threads are scheduled.
    pub fn reconfigure_with(&mut self, config: SchedulerConfig, policy: P) -> Result<(), u64> {
        if self.engine.pending() > 0 {
            return Err(self.engine.pending());
        }
        self.engine
            .reconfigure(config.hash_size(), config.tour(), policy);
        self.config = config;
        Ok(())
    }

    /// Creates and schedules a thread to call `func(ctx, arg1, arg2)`,
    /// binned by `hints` (the paper's `th_fork`).
    #[inline]
    pub fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, hints: Hints) {
        self.fork_traced(func, arg1, arg2, hints, &mut memtrace::NullSink);
    }

    /// Like [`fork`](Self::fork), additionally emitting the package's
    /// own memory references into `sink` if
    /// [`trace_package_memory`](Self::trace_package_memory) was called:
    /// the hash-bucket probe, the thread-record store, and the
    /// bin-header update.
    #[inline]
    pub fn fork_traced<S: TraceSink>(
        &mut self,
        func: ThreadFn<C>,
        arg1: usize,
        arg2: usize,
        hints: Hints,
        sink: &mut S,
    ) {
        self.engine
            .insert_traced(ThreadSpec { func, arg1, arg2 }, hints, sink);
    }

    /// Runs every scheduled thread, visiting bins in tour order and
    /// draining each bin before moving on (the paper's `th_run`).
    ///
    /// With [`RunMode::Retain`] the schedule survives and can be re-run
    /// (or extended with further forks); with [`RunMode::Consume`] the
    /// scheduler is left empty.
    pub fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        self.engine.run_with(
            ctx,
            mode,
            |_, _, _| {},
            |_, _| {},
            |_, _, _| {},
            |ctx, spec| (spec.func)(ctx, spec.arg1, spec.arg2),
        )
    }

    /// Like [`run`](Self::run), additionally emitting the package's
    /// dispatch-time memory references (ready-list walk, bin headers,
    /// thread-record loads) if
    /// [`trace_package_memory`](Self::trace_package_memory) was called,
    /// plus the run's *schedule events*: a
    /// [`thread_begin`](TraceSink::thread_begin) before each thread
    /// body, a [`drain_begin`](TraceSink::drain_begin) /
    /// [`drain_end`](TraceSink::drain_end) pair around each drain unit
    /// (one bin for flat policies, one parent group's sub-bins for
    /// nested ones), and a [`run_end`](TraceSink::run_end) when the
    /// drain finishes. Ordinary sinks ignore those (default no-ops);
    /// schedule-analysis sinks use them to attribute the trace to
    /// threads and to rebuild the drain-unit structure.
    ///
    /// `sink_of` borrows the sink out of the context between thread
    /// invocations (thread bodies usually own the sink through the same
    /// context).
    pub fn run_traced<S, F>(&mut self, ctx: &mut C, mode: RunMode, sink_of: F) -> RunStats
    where
        S: TraceSink,
        F: FnMut(&mut C) -> &mut S,
    {
        // Two of the engine's callbacks borrow the sink accessor; they
        // never run reentrantly, so a RefCell shares it between them.
        let sink_of = std::cell::RefCell::new(sink_of);
        let stats = self.engine.run_with(
            ctx,
            mode,
            |ctx, addr, size| (sink_of.borrow_mut())(ctx).read(addr, size),
            |ctx, seq| (sink_of.borrow_mut())(ctx).thread_begin(seq),
            |ctx, unit, begin| {
                let sink = &mut *(sink_of.borrow_mut());
                let sink = sink(ctx);
                if begin {
                    sink.drain_begin(unit);
                } else {
                    sink.drain_end(unit);
                }
            },
            |ctx, spec| (spec.func)(ctx, spec.arg1, spec.arg2),
        );
        (sink_of.into_inner())(ctx).run_end();
        stats
    }

    /// Switches the scheduler into *online* (incremental) drain mode
    /// for serving-style workloads: forks keep arriving while
    /// [`drain_next`](Self::drain_next) hands out one ready drain unit
    /// at a time, still in tour/policy order. A drain unit is one bin
    /// for flat policies, or one parent bin's sub-bins (drained
    /// back-to-back in sorted fine-key order) for hierarchical
    /// policies.
    ///
    /// Threads already scheduled become ready in bin-creation order, so
    /// enabling after a batch of forks and draining to exhaustion
    /// executes exactly what one [`run`](Self::run) would have — same
    /// order, same dispatch numbering — for every tour except
    /// [`Tour::Random`](crate::Tour::Random), whose batch shuffle has
    /// no incremental equivalent (it degrades to a stationary seeded
    /// hash order). A bin refilled after its drain is re-linked at the
    /// *back* of the ready order, as the paper's package re-links a
    /// refilled bin onto its ready list.
    ///
    /// The configured [`EvictionPolicy`](crate::EvictionPolicy) (see
    /// [`SchedulerConfigBuilder::eviction`](crate::SchedulerConfigBuilder::eviction))
    /// takes effect here: with it on, drained-and-empty bin records are
    /// retired so a long-running server's bin table stays bounded. An
    /// evicted key that re-arrives behaves exactly like a fresh fork,
    /// and records are only reaped during forks — so a run whose forks
    /// all precede its drains never evicts, and live-bin drain order is
    /// identical with eviction on or off.
    ///
    /// Idempotent; batch [`run`](Self::run) calls remain available and
    /// unchanged, but mixing [`RunMode::Retain`] runs with incremental
    /// drains is unsupported.
    pub fn enable_online(&mut self) {
        let eviction = self.config.eviction();
        self.engine.enable_online(eviction);
    }

    /// Whether [`enable_online`](Self::enable_online) was called.
    pub fn online(&self) -> bool {
        self.engine.online()
    }

    /// Drains the single next ready unit (online mode), consuming its
    /// threads. Returns `None` when no thread is ready.
    ///
    /// # Panics
    ///
    /// Panics if [`enable_online`](Self::enable_online) was not called.
    pub fn drain_next(&mut self, ctx: &mut C) -> Option<RunStats> {
        self.engine.drain_next_with(
            ctx,
            |_, _, _| {},
            |_, _| {},
            |_, _, _| {},
            |ctx, spec| (spec.func)(ctx, spec.arg1, spec.arg2),
        )
    }

    /// Number of threads currently scheduled.
    pub fn pending(&self) -> u64 {
        self.engine.pending()
    }

    /// Number of bins currently allocated.
    pub fn bins(&self) -> usize {
        self.engine.bins()
    }

    /// High-water mark of live bin records over the scheduler's life.
    /// With an [`EvictionPolicy::LruCap`](crate::EvictionPolicy::LruCap)
    /// this is the number the cap bounds.
    pub fn peak_bins(&self) -> usize {
        self.engine.peak_bins()
    }

    /// Bin records freed by the online eviction policy so far (zero
    /// for batch mode or [`EvictionPolicy::Off`](crate::EvictionPolicy::Off)).
    pub fn evictions(&self) -> u64 {
        self.engine.evictions()
    }

    /// Distribution statistics over the current schedule (the paper
    /// reports these per benchmark: threads, bins, threads per bin).
    pub fn stats(&self) -> SchedulerStats {
        self.engine.stats()
    }

    /// Flushes the probe observations accumulated so far (forks, bin
    /// creation vs. reuse, bin occupancy/drain times, run turnaround;
    /// for hierarchical policies also parent occupancy and sub-bin
    /// drains) into a `"sched"` profile section. Cumulative across
    /// runs; with the probe layer compiled out (see [`probe::enabled`])
    /// every counter reads zero and every histogram is empty.
    pub fn run_profile(&self) -> probe::Section {
        self.engine.run_profile()
    }

    /// Removes all scheduled threads and bins (the arena of a traced
    /// package is recycled, as a real allocator would).
    pub fn clear(&mut self) {
        self.engine.clear();
    }
}

impl<C, P: BinPolicy> ThreadScheduler<C> for Scheduler<C, P> {
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, hints: Hints) {
        Scheduler::fork(self, func, arg1, arg2, hints);
    }

    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        Scheduler::run(self, ctx, mode)
    }

    fn pending(&self) -> u64 {
        Scheduler::pending(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GROUP_CAPACITY;
    use crate::policy::Hierarchical;
    use memtrace::Addr;

    type Log = Vec<(usize, usize)>;

    fn record(log: &mut Log, a: usize, b: usize) {
        log.push((a, b));
    }

    fn config(block: u64) -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(block)
            .build()
            .unwrap()
    }

    #[test]
    fn runs_every_thread_exactly_once() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..100 {
            sched.fork(record, i, i * 2, Hints::one(Addr::new((i as u64) * 333)));
        }
        assert_eq!(sched.pending(), 100);
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 100);
        assert_eq!(log.len(), 100);
        let mut seen: Vec<usize> = log.iter().map(|&(a, _)| a).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn threads_with_same_block_run_adjacently() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        // Interleave forks into two far-apart blocks.
        for i in 0..10 {
            sched.fork(record, 0, i, Hints::one(Addr::new(0)));
            sched.fork(record, 1, i, Hints::one(Addr::new(1 << 30)));
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        // All block-0 threads must precede all block-1 threads
        // (allocation order: block 0 was allocated first).
        let first_of_b1 = log.iter().position(|&(a, _)| a == 1).unwrap();
        assert!(log[..first_of_b1].iter().all(|&(a, _)| a == 0));
        assert_eq!(
            log[first_of_b1..].iter().filter(|&&(a, _)| a == 1).count(),
            10
        );
    }

    #[test]
    fn within_bin_order_is_fork_order() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..(GROUP_CAPACITY * 2 + 7) {
            sched.fork(record, i, 0, Hints::one(Addr::new(4)));
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        let order: Vec<usize> = log.iter().map(|&(a, _)| a).collect();
        assert_eq!(order, (0..GROUP_CAPACITY * 2 + 7).collect::<Vec<_>>());
    }

    #[test]
    fn retain_re_runs_the_same_schedule() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..5 {
            sched.fork(record, i, 0, Hints::one(Addr::new(i as u64 * 10_000)));
        }
        let mut log = Log::new();
        let s1 = sched.run(&mut log, RunMode::Retain);
        assert_eq!(sched.pending(), 5, "retained");
        let s2 = sched.run(&mut log, RunMode::Consume);
        assert_eq!(s1.threads_run, s2.threads_run);
        assert_eq!(log.len(), 10);
        assert_eq!(&log[..5], &log[5..], "identical re-execution");
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn paper_2_4_example_binning() {
        // 4x4 matmul, cache = 4 vectors, block dim = half the cache:
        // threads (i,j) with hints (a_i, b_j) fall into 4 bins of 4.
        let vec_bytes = 1024u64;
        let a_base = 0u64; // A's columns at 0..4*vec_bytes
        let b_base = 1 << 20; // B's columns elsewhere
        let cfg = SchedulerConfig::builder()
            .block_size(2 * vec_bytes)
            .build()
            .unwrap();
        let mut sched: Scheduler<Log> = Scheduler::new(cfg);
        for i in 0..4usize {
            for j in 0..4usize {
                sched.fork(
                    record,
                    i,
                    j,
                    Hints::two(
                        Addr::new(a_base + i as u64 * vec_bytes),
                        Addr::new(b_base + j as u64 * vec_bytes),
                    ),
                );
            }
        }
        assert_eq!(sched.bins(), 4);
        let stats = sched.stats();
        assert_eq!(stats.max_threads_per_bin(), 4);
        assert_eq!(stats.min_threads_per_bin(), 4);
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        // Each consecutive run of 4 threads shares the bin's two vector
        // pairs: i in {0,1} x j in {0,1}, etc.
        for chunk in log.chunks(4) {
            let i_block = chunk[0].0 / 2;
            let j_block = chunk[0].1 / 2;
            for &(i, j) in chunk {
                assert_eq!(i / 2, i_block);
                assert_eq!(j / 2, j_block);
            }
        }
    }

    #[test]
    fn symmetric_config_folds_mirrored_hints() {
        let cfg = SchedulerConfig::builder()
            .block_size(1024)
            .symmetric(true)
            .build()
            .unwrap();
        let mut sched: Scheduler<Log> = Scheduler::new(cfg);
        sched.fork(record, 0, 0, Hints::two(Addr::new(0), Addr::new(1 << 20)));
        sched.fork(record, 1, 0, Hints::two(Addr::new(1 << 20), Addr::new(0)));
        assert_eq!(sched.bins(), 1, "mirrored hints share a bin");
    }

    #[test]
    fn no_hint_threads_run_in_fork_order() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        for i in 0..10 {
            sched.fork(record, i, 0, Hints::none());
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        assert_eq!(
            log.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_on_empty_scheduler_is_a_noop() {
        let mut sched: Scheduler<Log> = Scheduler::with_defaults();
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 0);
        assert_eq!(stats.bins_visited, 0);
        assert!(log.is_empty());
    }

    #[test]
    fn fork_after_consume_starts_fresh() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        sched.fork(record, 0, 0, Hints::one(Addr::new(0)));
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        sched.fork(record, 1, 1, Hints::one(Addr::new(0)));
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 1);
        assert_eq!(log, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn package_memory_tracing_emits_references() {
        use memtrace::CountingSink;
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        sched.trace_package_memory();
        let mut fork_sink = CountingSink::new();
        for i in 0..10 {
            sched.fork_traced(
                record,
                i,
                0,
                Hints::one(Addr::new(i as u64 * 100_000)),
                &mut fork_sink,
            );
        }
        // Per fork: bucket probe (read) + spec store + count bump; per
        // new bin: header init; per new group: header init.
        assert_eq!(fork_sink.reads(), 10, "one hash probe per fork");
        assert_eq!(
            fork_sink.writes(),
            10 * 2 + 10 + 10,
            "records+counts+bins+groups"
        );

        struct Ctx {
            log: Log,
            sink: CountingSink,
        }
        fn traced_record(ctx: &mut Ctx, a: usize, b: usize) {
            ctx.log.push((a, b));
        }
        let mut sched2: Scheduler<Ctx> = Scheduler::new(config(1024));
        sched2.trace_package_memory();
        let mut fork_sink = CountingSink::new();
        for i in 0..10 {
            sched2.fork_traced(
                traced_record,
                i,
                0,
                Hints::one(Addr::new(i as u64 * 100_000)),
                &mut fork_sink,
            );
        }
        let mut ctx = Ctx {
            log: Log::new(),
            sink: CountingSink::new(),
        };
        let stats = sched2.run_traced(&mut ctx, RunMode::Consume, |c| &mut c.sink);
        assert_eq!(stats.threads_run, 10);
        assert_eq!(ctx.log.len(), 10);
        // Per bin: header read + group header read; per thread: one
        // record read. 10 bins here (distinct blocks).
        assert_eq!(ctx.sink.reads(), 10 + 10 + 10);
    }

    #[test]
    fn schedule_events_reach_the_sink_in_schedule_order() {
        use crate::engine::PACKAGE_TRACE_BASE;
        use memtrace::{FootprintSink, TraceSink};

        struct Ctx {
            sink: FootprintSink,
        }
        fn touch(ctx: &mut Ctx, a: usize, _b: usize) {
            ctx.sink.write(Addr::new(a as u64 * 0x100), 8);
        }

        let mut sched: Scheduler<Ctx> = Scheduler::new(config(1024));
        sched.trace_package_memory();
        let mut sink = FootprintSink::ignoring_at_or_above(Addr::new(PACKAGE_TRACE_BASE));
        // Two bins: forks 0 and 2 share a block, fork 1 sits far away;
        // the drain visits bins in allocation order, so dispatch order
        // is fork 0, fork 2, fork 1.
        sched.fork_traced(touch, 1, 0, Hints::one(Addr::new(0x10)), &mut sink);
        sched.fork_traced(touch, 2, 0, Hints::one(Addr::new(0x100_000)), &mut sink);
        sched.fork_traced(touch, 3, 0, Hints::one(Addr::new(0x20)), &mut sink);
        let mut ctx = Ctx { sink };
        sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut c.sink);

        let phases = ctx.sink.into_phases();
        assert_eq!(phases.len(), 1);
        let phase = &phases[0];
        // Hints arrive in fork order.
        assert_eq!(
            phase.hints,
            vec![
                vec![Addr::new(0x10)],
                vec![Addr::new(0x100_000)],
                vec![Addr::new(0x20)],
            ]
        );
        // Footprints arrive in dispatch order, package traffic
        // filtered out by the base-address threshold.
        let written: Vec<u64> = phase
            .dispatches
            .iter()
            .map(|fp| fp.write_words().iter().next().copied().unwrap() * 8)
            .collect();
        assert_eq!(written, vec![0x100, 0x300, 0x200]);
    }

    #[test]
    fn tracing_disabled_emits_nothing() {
        use memtrace::CountingSink;
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        let mut sink = CountingSink::new();
        sched.fork_traced(record, 0, 0, Hints::none(), &mut sink);
        assert_eq!(sink.data_references(), 0);
    }

    #[test]
    fn reconfigure_between_runs() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        sched.fork(record, 0, 0, Hints::one(Addr::new(5000)));
        // Occupied: reconfiguration refused, count reported.
        assert_eq!(sched.reconfigure(config(4096)), Err(1));
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        // Empty: accepted, and the new block size takes effect.
        assert_eq!(sched.reconfigure(config(1 << 16)), Ok(()));
        sched.fork(record, 0, 0, Hints::one(Addr::new(0)));
        sched.fork(record, 1, 0, Hints::one(Addr::new(5000)));
        assert_eq!(sched.bins(), 1, "5000 < 64 KiB: same block now");
    }

    #[test]
    fn trait_object_compatible_generics() {
        fn drive<S: ThreadScheduler<Log>>(sched: &mut S) -> u64 {
            sched.fork(record, 7, 7, Hints::none());
            let mut log = Log::new();
            sched.run(&mut log, RunMode::Consume).threads_run
        }
        let mut sched: Scheduler<Log> = Scheduler::with_defaults();
        assert_eq!(drive(&mut sched), 1);
    }

    /// The pre-refactor `Scheduler` run order on a dense pseudo-random
    /// 2-D workload, captured before the engine extraction as an FNV-1a
    /// digest of the executed `arg1` sequence. Any deviation in the
    /// hints → bin → tour → drain pipeline changes this digest.
    #[test]
    fn run_order_matches_pre_refactor_golden() {
        fn body(log: &mut Vec<usize>, i: usize, _j: usize) {
            log.push(i);
        }
        for (symmetric, golden) in [
            (false, 0x602b_6d0e_814b_6447u64),
            (true, 0x75cd_8bb5_5def_c1e9),
        ] {
            let cfg = SchedulerConfig::builder()
                .block_size(1 << 16)
                .symmetric(symmetric)
                .build()
                .unwrap();
            let mut sched: Scheduler<Vec<usize>> = Scheduler::new(cfg);
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for i in 0..300usize {
                let mut next = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let a = next() % (1 << 21);
                let b = next() % (1 << 21);
                sched.fork(body, i, 0, Hints::two(Addr::new(a), Addr::new(b)));
            }
            let mut log = Vec::new();
            sched.run(&mut log, RunMode::Consume);
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            for v in &log {
                digest ^= *v as u64;
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
            assert_eq!(digest, golden, "symmetric={symmetric}");
        }
    }

    #[test]
    fn hierarchical_policy_drains_subbins_within_parents() {
        // 1 KiB sub-bins inside 4 KiB parents. Forks touch two parents
        // (0x0000.. and 0x8000..), each with interleaved sub-blocks.
        let policy = Hierarchical::uniform(1 << 10, 1 << 12, false).unwrap();
        let mut sched: Scheduler<Log, Hierarchical> =
            Scheduler::with_policy(SchedulerConfig::default(), policy);
        let addrs: [u64; 8] = [
            0x0000, 0x8000, 0x0400, 0x8400, 0x0800, 0x8800, 0x0c00, 0x8c00,
        ];
        for (i, &addr) in addrs.iter().enumerate() {
            sched.fork(record, i, 0, Hints::one(Addr::new(addr)));
        }
        assert_eq!(sched.bins(), 8, "one sub-bin per 1 KiB block");
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 8);
        // Parent 0x0000 was allocated first: all four of its sub-bins
        // drain before any of parent 0x8000's, each parent's sub-bins
        // in ascending fine-key order.
        let order: Vec<usize> = log.iter().map(|&(a, _)| a).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    /// Every tour but Random: batch-fork + online drain-to-exhaustion
    /// must equal the batch run exactly.
    #[test]
    fn online_drain_matches_batch_run_per_tour() {
        use crate::Tour;
        for tour in [
            Tour::AllocationOrder,
            Tour::SortedKey,
            Tour::Hilbert,
            Tour::Morton,
        ] {
            let cfg = SchedulerConfig::builder()
                .block_size(1 << 12)
                .tour(tour)
                .build()
                .unwrap();
            let fork_all = |sched: &mut Scheduler<Log>| {
                let mut x = 0xD1B5_4A32_D192_ED03u64;
                for i in 0..400usize {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    sched.fork(record, i, 0, Hints::one(Addr::new(x % (1 << 22))));
                }
            };
            let mut batch: Scheduler<Log> = Scheduler::new(cfg);
            fork_all(&mut batch);
            let mut batch_log = Log::new();
            batch.run(&mut batch_log, RunMode::Consume);

            let mut online: Scheduler<Log> = Scheduler::new(cfg);
            fork_all(&mut online);
            online.enable_online();
            assert!(online.online());
            let mut online_log = Log::new();
            let mut units = 0;
            while let Some(stats) = online.drain_next(&mut online_log) {
                assert!(stats.threads_run > 0);
                units += 1;
            }
            assert_eq!(online.pending(), 0);
            assert!(units > 1, "{tour:?} drained in more than one unit");
            assert_eq!(online_log, batch_log, "{tour:?}");
        }
    }

    #[test]
    fn online_drain_matches_batch_run_hierarchical() {
        let policy = Hierarchical::uniform(1 << 10, 1 << 12, false).unwrap();
        let fork_all = |sched: &mut Scheduler<Log, Hierarchical>| {
            for i in 0..120usize {
                let addr = (i as u64 * 0x2f1) % (1 << 16);
                sched.fork(record, i, 0, Hints::one(Addr::new(addr)));
            }
        };
        let mut batch = Scheduler::with_policy(SchedulerConfig::default(), policy);
        fork_all(&mut batch);
        let mut batch_log = Log::new();
        batch.run(&mut batch_log, RunMode::Consume);

        let mut online = Scheduler::with_policy(SchedulerConfig::default(), policy);
        fork_all(&mut online);
        online.enable_online();
        let mut online_log = Log::new();
        let mut max_unit = 0;
        while let Some(stats) = online.drain_next(&mut online_log) {
            max_unit = max_unit.max(stats.bins_visited);
        }
        assert!(max_unit > 1, "a parent unit spans several sub-bins");
        assert_eq!(online_log, batch_log);
    }

    #[test]
    fn online_refilled_bin_relinks_at_the_back() {
        let mut sched: Scheduler<Log> = Scheduler::new(config(1024));
        sched.enable_online();
        // Bin X gets work, drains.
        sched.fork(record, 0, 0, Hints::one(Addr::new(0)));
        let mut log = Log::new();
        assert!(sched.drain_next(&mut log).is_some());
        // Bin Y then bin X again: the refilled X must drain *after* Y.
        sched.fork(record, 1, 0, Hints::one(Addr::new(1 << 20)));
        sched.fork(record, 2, 0, Hints::one(Addr::new(4)));
        assert!(sched.drain_next(&mut log).is_some());
        assert!(sched.drain_next(&mut log).is_some());
        assert!(sched.drain_next(&mut log).is_none());
        assert_eq!(log, vec![(0, 0), (1, 0), (2, 0)]);
    }

    fn eviction_config(eviction: crate::EvictionPolicy) -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(1 << 10)
            .eviction(eviction)
            .build()
            .unwrap()
    }

    /// Serving-style fork/drain alternation with many distinct keys:
    /// the LRU cap must bound the live record count for the whole run.
    #[test]
    fn lru_cap_bounds_live_bin_records() {
        use crate::EvictionPolicy;
        let mut sched: Scheduler<Log> =
            Scheduler::new(eviction_config(EvictionPolicy::LruCap { max_records: 4 }));
        sched.enable_online();
        let mut log = Log::new();
        for i in 0..64usize {
            sched.fork(record, i, 0, Hints::one(Addr::new(i as u64 * 2048)));
            assert!(sched.bins() <= 4, "cap violated at fork {i}");
            assert!(sched.drain_next(&mut log).is_some());
        }
        assert_eq!(sched.peak_bins(), 4);
        assert_eq!(sched.evictions(), 64 - 4);
        // Order is untouched: strict fork order, one bin at a time.
        assert_eq!(
            log.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
            (0..64).collect::<Vec<_>>()
        );
    }

    /// An evicted key that re-arrives behaves exactly like a refilled
    /// bin: fresh record, re-linked at the back of the ready order.
    #[test]
    fn evicted_key_rearrives_as_fresh_fork() {
        use crate::EvictionPolicy;
        let mut sched: Scheduler<Log> =
            Scheduler::new(eviction_config(EvictionPolicy::LruCap { max_records: 1 }));
        sched.enable_online();
        let mut log = Log::new();
        // Bin X fills and drains, leaving an idle record.
        sched.fork(record, 0, 0, Hints::one(Addr::new(0)));
        assert!(sched.drain_next(&mut log).is_some());
        // Bin Y's fork pushes the table over the cap: X is reaped.
        sched.fork(record, 1, 0, Hints::one(Addr::new(1 << 20)));
        assert_eq!(sched.evictions(), 1);
        assert_eq!(sched.bins(), 1);
        // X re-arrives; it must drain *after* Y, like any fresh fork.
        sched.fork(record, 2, 0, Hints::one(Addr::new(4)));
        while sched.drain_next(&mut log).is_some() {}
        assert_eq!(log, vec![(0, 0), (1, 0), (2, 0)]);
    }

    /// Idle-age eviction frees a record only once it has outlived
    /// `max_idle_drains` drain grants without a refill.
    #[test]
    fn idle_age_reaps_after_configured_drains() {
        use crate::EvictionPolicy;
        let mut sched: Scheduler<Log> = Scheduler::new(eviction_config(EvictionPolicy::IdleAge {
            max_idle_drains: 2,
        }));
        sched.enable_online();
        let mut log = Log::new();
        // A drains at epoch 1.
        sched.fork(record, 0, 0, Hints::one(Addr::new(0)));
        assert!(sched.drain_next(&mut log).is_some());
        // Two more fork/drain rounds age A to the threshold; it is
        // still within its allowance at each intermediate fork.
        sched.fork(record, 1, 0, Hints::one(Addr::new(2048)));
        assert_eq!(sched.evictions(), 0);
        assert!(sched.drain_next(&mut log).is_some());
        sched.fork(record, 2, 0, Hints::one(Addr::new(4096)));
        assert_eq!(sched.evictions(), 0);
        assert!(sched.drain_next(&mut log).is_some());
        // Epoch is now 3 ≥ 1 + 2: the next fork reaps A (and only A).
        sched.fork(record, 3, 0, Hints::one(Addr::new(6144)));
        assert_eq!(sched.evictions(), 1);
        assert_eq!(sched.bins(), 3);
    }

    /// UniqueBin (every fork a fresh record) is the worst-case leak;
    /// the cap must bound it too.
    #[test]
    fn unique_bin_records_stay_bounded_under_cap() {
        use crate::policy::UniqueBin;
        use crate::EvictionPolicy;
        let mut sched: Scheduler<Log, UniqueBin> = Scheduler::with_policy(
            eviction_config(EvictionPolicy::LruCap { max_records: 4 }),
            UniqueBin::default(),
        );
        sched.enable_online();
        let mut log = Log::new();
        for i in 0..40usize {
            sched.fork(record, i, 0, Hints::none());
            assert!(sched.bins() <= 4, "cap violated at fork {i}");
            assert!(sched.drain_next(&mut log).is_some());
        }
        assert_eq!(sched.evictions(), 40 - 4);
    }

    /// With every fork preceding every drain (the t=0 equivalence
    /// shape), eviction never fires and the drain order is byte-equal
    /// to the batch run.
    #[test]
    fn t0_drain_with_eviction_matches_batch_and_never_evicts() {
        use crate::EvictionPolicy;
        let fork_all = |sched: &mut Scheduler<Log>| {
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for i in 0..300usize {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                sched.fork(record, i, 0, Hints::one(Addr::new(x % (1 << 20))));
            }
        };
        let mut batch: Scheduler<Log> = Scheduler::new(eviction_config(EvictionPolicy::Off));
        fork_all(&mut batch);
        let mut batch_log = Log::new();
        batch.run(&mut batch_log, RunMode::Consume);

        let mut online: Scheduler<Log> =
            Scheduler::new(eviction_config(EvictionPolicy::LruCap { max_records: 2 }));
        fork_all(&mut online);
        online.enable_online();
        let mut online_log = Log::new();
        while online.drain_next(&mut online_log).is_some() {}
        assert_eq!(online.evictions(), 0, "no insert follows a drain");
        assert_eq!(online_log, batch_log);
    }

    #[test]
    fn online_drain_on_empty_is_none_and_fifo_policy_batches() {
        use crate::policy::SingleBin;
        let mut sched: Scheduler<Log, SingleBin> =
            Scheduler::with_policy(SchedulerConfig::default(), SingleBin);
        sched.enable_online();
        let mut log = Log::new();
        assert!(sched.drain_next(&mut log).is_none());
        for i in 0..5 {
            sched.fork(record, i, 0, Hints::none());
        }
        // One bin ⇒ the whole backlog is one drain unit, in fork order.
        let stats = sched.drain_next(&mut log).unwrap();
        assert_eq!(stats.threads_run, 5);
        assert_eq!(
            log.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(sched.drain_next(&mut log).is_none());
    }

    #[test]
    fn hierarchical_retain_re_runs_identically() {
        let policy = Hierarchical::uniform(512, 4096, false).unwrap();
        let mut sched: Scheduler<Log, Hierarchical> =
            Scheduler::with_policy(SchedulerConfig::default(), policy);
        for i in 0..50 {
            sched.fork(
                record,
                i,
                0,
                Hints::one(Addr::new((i as u64 * 397) % 16384)),
            );
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Retain);
        sched.run(&mut log, RunMode::Consume);
        assert_eq!(&log[..50], &log[50..], "identical re-execution");
    }
}

//! The shared bin engine (paper §3.2), generic over the scheduled item
//! type and the [`BinPolicy`].
//!
//! Every scheduler in this crate — [`Scheduler`](crate::Scheduler),
//! [`PhasedScheduler`](crate::PhasedScheduler),
//! [`FifoScheduler`](crate::FifoScheduler),
//! [`RandomScheduler`](crate::RandomScheduler) and
//! [`ParScheduler`](crate::ParScheduler) — is a thin configuration of
//! this one engine: hash table + ready list, thread groups, optional
//! package-memory tracing, the tour-ordered drain loop, and the probe
//! observations. The policy owns *where* a thread goes (hints → bin
//! key, optional parent grouping); the engine owns everything else.

use crate::config::EvictionPolicy;
use crate::hint::MAX_DIMS;
use crate::policy::BinPolicy;
use crate::stats::{RunStats, SchedulerStats};
use crate::table::{BinId, BinTable};
use crate::{Hints, RunMode, Tour};
use memtrace::{Addr, TraceSink};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Fixed base of the package's synthetic memory: every reference the
/// scheduler emits on its own behalf (hash buckets, bin records, thread
/// groups) lives at or above this address, and no traced application
/// structure ever does. Trace consumers that want application traffic
/// only — e.g. `memtrace::FootprintSink` feeding the schedule analyzer
/// — can filter on it.
pub const PACKAGE_TRACE_BASE: u64 = 0x7f00_0000_0000;

/// Threads per thread-group chunk. "The thread group data structure
/// represents a number of threads within a bin; by grouping threads
/// together in this way, amortization reduces the cost of thread
/// structure management" (§3.2).
pub(crate) const GROUP_CAPACITY: usize = 256;

/// Bytes of one thread record: function pointer + two word arguments
/// (the paper's three-word spec).
const SPEC_BYTES: u64 = 24;
/// Bytes of a bin record: "three link fields and a search key" (§3.2).
const BIN_HEADER_BYTES: u64 = 48;
/// Bytes of a thread-group header: count + next pointer.
const GROUP_HEADER_BYTES: u64 = 16;
/// Bytes of one hash bucket (a pointer).
const BUCKET_BYTES: u64 = 8;

/// One thread group: a chunk of thread records plus the synthetic
/// address of its storage (null when package-memory tracing is off).
#[derive(Clone, Debug)]
pub(crate) struct Group<T> {
    items: Vec<T>,
    base: Addr,
}

/// A bin: the chain of thread groups for one block of the scheduling
/// space.
#[derive(Clone, Debug)]
pub(crate) struct Bin<T> {
    groups: Vec<Group<T>>,
    threads: u64,
    /// Synthetic address of the bin record (null when tracing is off).
    header: Addr,
    /// Drain epoch at which this bin was last drained empty — its
    /// ticket in the eviction idle queue. `0` means "not a candidate"
    /// (never drained, refilled since, or freshly (re)created); a
    /// queued `(stamp, id)` entry is valid iff `stamp == idle_stamp`.
    idle_stamp: u64,
}

impl<T> Bin<T> {
    fn new(header: Addr) -> Self {
        Bin {
            groups: Vec::new(),
            threads: 0,
            header,
            idle_stamp: 0,
        }
    }

    /// Number of threads in the bin.
    pub(crate) fn threads(&self) -> u64 {
        self.threads
    }

    /// All thread records in fork order.
    pub(crate) fn items(&self) -> impl Iterator<Item = &T> {
        self.groups.iter().flat_map(|g| g.items.iter())
    }
}

/// Synthetic addresses for the package's own data structures, so their
/// cache traffic shows up in traces (Pixie instrumented the thread
/// package along with the application — the visible difference between
/// the paper's threaded and cache-conscious PDE columns in Table 5).
#[derive(Clone, Debug)]
struct MetaTrace {
    /// The hash table's bucket array.
    table_base: Addr,
    /// Bump pointer for bin records and thread groups, mimicking an
    /// arena allocator.
    bump: Addr,
    arena_base: Addr,
    end: Addr,
}

impl MetaTrace {
    fn alloc(&mut self, bytes: u64) -> Addr {
        let addr = self.bump;
        assert!(
            addr.raw() + bytes <= self.end.raw(),
            "scheduler meta-trace region exhausted"
        );
        self.bump = addr + bytes;
        addr
    }
}

/// Probe observations for one engine instance, cumulative across runs.
/// Kept out of [`RunStats`]/[`SchedulerStats`] so the always-on
/// statistics stay byte-identical whether or not probes are compiled
/// in; flushed on demand by [`BinEngine::run_profile`].
#[derive(Clone, Debug, Default)]
struct SchedObs {
    /// Threads forked.
    forks: probe::LocalCounter,
    /// Forks that allocated a new bin.
    bins_created: probe::LocalCounter,
    /// Forks whose hint mapped to an already-existing bin — the
    /// hint-to-bin reuse the locality win depends on.
    rebin_hits: probe::LocalCounter,
    /// Thread count of each bin drained by `run_with`.
    bin_occupancy: probe::Histogram,
    /// Wall time to drain one bin.
    bin_drain_ns: probe::Histogram,
    /// Wall time of one whole `run_with` call (turnaround).
    run_ns: probe::Histogram,
    /// Thread count of each *parent* group drained (hierarchical
    /// policies only; empty for flat policies).
    parent_occupancy: probe::Histogram,
    /// Sub-bins drained under parent grouping (hierarchical policies
    /// only; zero for flat policies).
    subbins_run: probe::LocalCounter,
    /// Bin records freed by the online eviction policy.
    evictions: probe::LocalCounter,
}

/// A ready-heap entry: `(tour rank, ready sequence, parent key)`.
/// Ordered `Reverse` so the heap pops the minimal rank first; the
/// monotone ready sequence breaks rank ties, which under
/// [`Tour::AllocationOrder`] (rank constant) *is* the paper's ready
/// list — units drain in the order they first received work.
type ReadyEntry = Reverse<([u64; MAX_DIMS], u64, [u64; MAX_DIMS])>;

/// Incremental-drain bookkeeping, present only after
/// [`BinEngine::enable_online`]. The drain *unit* is a parent group:
/// for flat policies the parent key is the bin key itself (one bin per
/// unit); hierarchical policies drain all of a parent's ready sub-bins
/// back-to-back in sorted fine-key order, exactly as the batch tour
/// does.
///
/// Invariant: a parent key is queued in `heap` (and present in
/// `queued`) iff at least one of its member bins holds threads. Inserts
/// queue the parent on its empty → non-empty transition; a drain pops
/// it and empties every member bin, so there are never stale heap
/// entries.
#[derive(Clone, Debug, Default)]
struct OnlineState {
    heap: BinaryHeap<ReadyEntry>,
    /// Parent keys currently queued, with their ready sequence number.
    queued: HashMap<[u64; MAX_DIMS], u64>,
    /// Parent key → member bin ids, in bin-creation order.
    members: HashMap<[u64; MAX_DIMS], Vec<BinId>>,
    next_seq: u64,
    /// Dispatch counter across all incremental drains (feeds
    /// `on_dispatch` with globally increasing sequence numbers, so a
    /// full incremental drain numbers threads exactly as one batch run
    /// would).
    dispatched: u64,
    /// Bin-record retirement policy (see [`EvictionPolicy`]).
    eviction: EvictionPolicy,
    /// Count of drain grants so far; the epoch stamped onto bins as
    /// they drain empty. Starts at zero, so valid stamps are ≥ 1 and
    /// `idle_stamp == 0` is unambiguous.
    drain_epoch: u64,
    /// Eviction candidates in stamp (least-recently-drained) order.
    /// Entries are lazily invalidated — a refill zeroes the bin's
    /// `idle_stamp`, a re-drain restamps it — and the queue is
    /// compacted when stale entries pile up, so it stays O(live bins).
    idle: VecDeque<(u64, BinId)>,
    /// Bin records freed so far (always-on twin of the probe counter).
    evictions: u64,
}

impl OnlineState {
    fn with_eviction(eviction: EvictionPolicy) -> Self {
        OnlineState {
            eviction,
            ..OnlineState::default()
        }
    }

    /// Queues `parent` if it is not already ready.
    fn queue(&mut self, tour: &Tour, parent: [u64; MAX_DIMS]) {
        if self.queued.contains_key(&parent) {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queued.insert(parent, seq);
        self.heap.push(Reverse((tour.rank(parent), seq, parent)));
    }
}

/// The bin engine: bin table, tour, thread groups, meta tracing, and
/// the drain loop, parameterized by the scheduled item type `T` and
/// the binning policy `P`.
#[derive(Clone, Debug)]
pub(crate) struct BinEngine<T, P> {
    policy: P,
    hash_size: usize,
    tour: Tour,
    table: BinTable,
    bins: Vec<Bin<T>>,
    threads: u64,
    meta: Option<MetaTrace>,
    obs: SchedObs,
    online: Option<OnlineState>,
    /// High-water mark of live bin records, across the engine's life.
    peak_bins: usize,
}

impl<T, P: BinPolicy> BinEngine<T, P> {
    /// Creates an empty engine.
    pub(crate) fn new(hash_size: usize, tour: Tour, policy: P) -> Self {
        BinEngine {
            table: BinTable::new(hash_size),
            bins: Vec::new(),
            threads: 0,
            policy,
            hash_size,
            tour,
            meta: None,
            obs: SchedObs::default(),
            online: None,
            peak_bins: 0,
        }
    }

    /// The engine's policy.
    pub(crate) fn policy(&self) -> &P {
        &self.policy
    }

    /// The coarsest-level ancestor of a fine bin key — the drain-unit
    /// grouping key. Identity for flat policies.
    #[inline]
    fn group_key(&self, key: [u64; MAX_DIMS]) -> [u64; MAX_DIMS] {
        self.policy.ancestor_key(key, self.policy.depth() - 1)
    }

    /// Orders two fine keys within one coarsest-level group by their
    /// full ancestor ladder: compare intermediate ancestor keys coarse
    /// → fine, tie-breaking on the fine key itself. Shifting is not
    /// monotone under plain lexicographic key order (e.g. keys `(1, 9)`
    /// < `(2, 0)` but their `>> 2` ancestors `(0, 2)` > `(0, 0)`), so
    /// sorting by the ladder — not the fine key — is what keeps each
    /// intermediate level's bins contiguous. At depth 2 the ladder is
    /// just the fine key, bit-identical to the pre-topology sort.
    #[inline]
    fn nested_cmp(&self, a: [u64; MAX_DIMS], b: [u64; MAX_DIMS]) -> Ordering {
        for level in (1..self.policy.depth().saturating_sub(1)).rev() {
            match self
                .policy
                .ancestor_key(a, level)
                .cmp(&self.policy.ancestor_key(b, level))
            {
                Ordering::Equal => {}
                other => return other,
            }
        }
        a.cmp(&b)
    }

    /// Enables tracing of the package's own memory traffic (see
    /// [`Scheduler::trace_package_memory`](crate::Scheduler::trace_package_memory)).
    pub(crate) fn trace_package_memory(&mut self) {
        let buckets = (self.hash_size as u64).pow(4) * BUCKET_BYTES;
        let table_base = Addr::new(PACKAGE_TRACE_BASE);
        let bump = (table_base + buckets).align_up(128);
        // A generous arena for bin records and thread groups; synthetic
        // addresses cost nothing to reserve.
        let arena = 1u64 << 30;
        self.meta = Some(MetaTrace {
            table_base,
            bump,
            arena_base: bump,
            end: bump + arena,
        });
    }

    /// Replaces table geometry, tour, and policy; only legal while
    /// empty. Probe observations survive (they are cumulative per
    /// scheduler instance), the synthetic trace region does not.
    pub(crate) fn reconfigure(&mut self, hash_size: usize, tour: Tour, policy: P) {
        debug_assert_eq!(self.threads, 0);
        self.table = BinTable::new(hash_size);
        self.bins.clear();
        self.hash_size = hash_size;
        self.tour = tour;
        self.policy = policy;
        // The synthetic hash-table region was sized for the old
        // configuration; re-enable tracing afterwards if needed.
        self.meta = None;
        // Ready state referred to the old keys; incremental mode stays
        // on (keeping its eviction policy), starting from an empty
        // ready list (legal: the engine is empty here).
        if let Some(state) = &self.online {
            self.online = Some(OnlineState::with_eviction(state.eviction));
        }
    }

    /// Places `item` into the bin chosen by the policy for `hints`,
    /// emitting the package's own memory references into `sink` if
    /// tracing is enabled: the hash-bucket probe, the thread-record
    /// store, and the bin-header update. Always announces the fork's
    /// hint addresses via [`TraceSink::thread_hints`] (a no-op for
    /// ordinary sinks) so schedule-analysis sinks see the thread/hint
    /// graph in fork order.
    #[inline]
    pub(crate) fn insert_traced<S: TraceSink>(&mut self, item: T, hints: Hints, sink: &mut S) {
        sink.thread_hints(&hints.as_array()[..hints.dims()]);
        let key = self.policy.bin_key(hints);
        let (id, created) = if self.policy.always_unique() {
            (self.table.append_unique(key), true)
        } else {
            self.table.lookup_or_insert(key)
        };
        self.obs.forks.incr();
        if created {
            self.obs.bins_created.incr();
        } else {
            self.obs.rebin_hits.incr();
        }
        if let Some(meta) = &mut self.meta {
            // Hash probe.
            let bucket = self.table.bucket_index(key) as u64;
            sink.read(meta.table_base + bucket * BUCKET_BYTES, BUCKET_BYTES as u32);
        }
        if created {
            let header = match &mut self.meta {
                Some(meta) => {
                    let header = meta.alloc(BIN_HEADER_BYTES);
                    // Initialize the bin record and link it into the
                    // bucket chain and the ready list.
                    sink.write(header, BIN_HEADER_BYTES as u32);
                    header
                }
                None => Addr::NULL,
            };
            // The table recycles evicted slots, so the id may name an
            // existing (dead) slot rather than the end of the array.
            if (id as usize) < self.bins.len() {
                self.bins[id as usize] = Bin::new(header);
            } else {
                self.bins.push(Bin::new(header));
            }
        }
        let bin = &mut self.bins[id as usize];
        // A refill (or fresh creation) disqualifies any queued eviction
        // candidacy for this slot.
        bin.idle_stamp = 0;
        let needs_group = match bin.groups.last() {
            Some(group) => group.items.len() >= GROUP_CAPACITY,
            None => true,
        };
        if needs_group {
            let base = match &mut self.meta {
                Some(meta) => {
                    let base = meta.alloc(GROUP_HEADER_BYTES + GROUP_CAPACITY as u64 * SPEC_BYTES);
                    sink.write(base, GROUP_HEADER_BYTES as u32);
                    base
                }
                None => Addr::NULL,
            };
            bin.groups.push(Group {
                items: Vec::with_capacity(GROUP_CAPACITY),
                base,
            });
        }
        let group = bin.groups.last_mut().expect("group just ensured");
        let slot = group.items.len() as u64;
        group.items.push(item);
        if self.meta.is_some() {
            // Store the three-word thread record and bump the group's
            // count field.
            sink.write(
                group.base + GROUP_HEADER_BYTES + slot * SPEC_BYTES,
                SPEC_BYTES as u32,
            );
            sink.write(group.base, 8);
        }
        bin.threads += 1;
        self.threads += 1;
        if self.online.is_some() {
            let parent = self.group_key(key);
            let state = self.online.as_mut().expect("checked above");
            if created {
                state.members.entry(parent).or_default().push(id);
            }
            // Either the parent is already ready (no-op) or this insert
            // made it non-empty — re-link it at the back of the ready
            // order, as the paper's package re-links a refilled bin.
            state.queue(&self.tour, parent);
            // Reap retired records *after* the fork completes: only
            // inserts trigger eviction, so a run whose arrivals all
            // precede its drains (the t=0 equivalence case) never
            // evicts, and the bin just forked into is non-empty and
            // therefore never a victim.
            self.apply_eviction();
        }
        self.peak_bins = self.peak_bins.max(self.table.len());
    }

    /// Whether `(stamp, id)` is still a valid eviction candidate: the
    /// slot is live, empty, and has not been refilled or re-drained
    /// since it was stamped.
    #[inline]
    fn is_evictable(&self, id: BinId, stamp: u64) -> bool {
        self.table.is_live(id)
            && self.bins[id as usize].threads == 0
            && self.bins[id as usize].idle_stamp == stamp
    }

    /// Frees one drained-and-empty bin record: unlinks it from the
    /// table (bucket chain + slot free list) and from its parent's
    /// member list. Live-bin tour order is untouched — the record has
    /// no threads, is not queued, and ids of other bins don't shift.
    fn evict(&mut self, id: BinId) {
        debug_assert_eq!(self.bins[id as usize].threads, 0);
        let parent = self.group_key(self.table.key(id));
        self.table.remove(id);
        // Drop the group storage; the slot is reused by a later insert.
        self.bins[id as usize] = Bin::new(Addr::NULL);
        let state = self.online.as_mut().expect("eviction is online-only");
        if let Some(members) = state.members.get_mut(&parent) {
            members.retain(|&m| m != id);
            if members.is_empty() {
                state.members.remove(&parent);
            }
        }
        state.evictions += 1;
        self.obs.evictions.incr();
    }

    /// Applies the configured eviction policy, called once per insert.
    fn apply_eviction(&mut self) {
        let eviction = match &self.online {
            Some(state) => state.eviction,
            None => return,
        };
        match eviction {
            EvictionPolicy::Off => {}
            EvictionPolicy::IdleAge { max_idle_drains } => loop {
                let state = self.online.as_mut().expect("checked above");
                let Some(&(stamp, id)) = state.idle.front() else {
                    break;
                };
                if stamp.saturating_add(max_idle_drains) > state.drain_epoch {
                    break;
                }
                state.idle.pop_front();
                if self.is_evictable(id, stamp) {
                    self.evict(id);
                }
            },
            EvictionPolicy::LruCap { max_records } => {
                while self.table.len() as u64 > max_records {
                    let state = self.online.as_mut().expect("checked above");
                    let Some((stamp, id)) = state.idle.pop_front() else {
                        // No empty candidate left; every live record
                        // holds threads and must stay.
                        break;
                    };
                    if self.is_evictable(id, stamp) {
                        self.evict(id);
                    }
                }
            }
        }
    }

    /// Switches the engine into *incremental* (online) drain mode:
    /// after this, [`drain_next_with`](Self::drain_next_with) hands out
    /// one ready drain unit at a time while further inserts keep
    /// landing in their bins. Any threads already scheduled become
    /// ready in bin-creation order — so enabling after a batch of
    /// inserts, then draining to exhaustion, reproduces the batch
    /// [`run_with`](Self::run_with) order exactly (for every tour
    /// except [`Tour::Random`], whose batch shuffle has no incremental
    /// equivalent; see [`Tour::rank`]).
    ///
    /// Idempotent (a second call leaves the first call's eviction
    /// policy in force). The batch `run_with` path is unaffected by
    /// this flag (its golden drain order stays pinned); mixing batch
    /// [`RunMode::Retain`](crate::RunMode::Retain) runs with
    /// incremental drains is unsupported.
    pub(crate) fn enable_online(&mut self, eviction: EvictionPolicy) {
        if self.online.is_some() {
            return;
        }
        let mut state = OnlineState::with_eviction(eviction);
        for (id, bin) in self.bins.iter().enumerate() {
            let parent = self.group_key(self.table.key(id as BinId));
            state.members.entry(parent).or_default().push(id as BinId);
            if bin.threads > 0 {
                state.queue(&self.tour, parent);
            }
        }
        self.online = Some(state);
    }

    /// Whether incremental drain mode is enabled.
    pub(crate) fn online(&self) -> bool {
        self.online.is_some()
    }

    /// Drains the single next ready unit — the minimal
    /// `(tour rank, ready seq)` parent group — with the same callback
    /// shape as [`run_with`](Self::run_with), consuming the drained
    /// threads. Returns `None` when nothing is ready.
    ///
    /// # Panics
    ///
    /// Panics if [`enable_online`](Self::enable_online) was not called.
    pub(crate) fn drain_next_with<X>(
        &mut self,
        ctx: &mut X,
        mut on_read: impl FnMut(&mut X, Addr, u32),
        mut on_dispatch: impl FnMut(&mut X, u64),
        mut on_unit: impl FnMut(&mut X, u64, bool),
        mut exec: impl FnMut(&mut X, &T),
    ) -> Option<RunStats> {
        let (parent, epoch) = {
            let state = self
                .online
                .as_mut()
                .expect("drain_next_with requires enable_online");
            let Reverse((_rank, _seq, parent)) = state.heap.pop()?;
            state.queued.remove(&parent);
            state.drain_epoch += 1;
            (parent, state.drain_epoch)
        };
        // The whole incremental drain is one unit; its ordinal is the
        // 0-based drain epoch.
        on_unit(ctx, epoch - 1, true);
        let state = self.online.as_ref().expect("checked above");
        let reap = state.eviction != EvictionPolicy::Off;
        let mut subs: Vec<BinId> = state.members[&parent]
            .iter()
            .copied()
            .filter(|&id| self.bins[id as usize].threads > 0)
            .collect();
        subs.sort_unstable_by(|&a, &b| self.nested_cmp(self.table.key(a), self.table.key(b)));
        let tracing = self.meta.is_some();
        let hierarchical = self.policy.depth() > 1;
        let mut dispatched = state.dispatched;
        let mut threads_run = 0u64;
        let mut bins_visited = 0usize;
        for &id in &subs {
            bins_visited += 1;
            self.obs
                .bin_occupancy
                .record(self.bins[id as usize].threads);
            if hierarchical {
                self.obs.subbins_run.incr();
            }
            let _drain_span = self.obs.bin_drain_ns.span();
            let bin = &mut self.bins[id as usize];
            if tracing {
                on_read(ctx, bin.header, BIN_HEADER_BYTES as u32);
            }
            for group in &bin.groups {
                if tracing {
                    on_read(ctx, group.base, GROUP_HEADER_BYTES as u32);
                }
                for (slot, item) in group.items.iter().enumerate() {
                    if tracing {
                        on_read(
                            ctx,
                            group.base + GROUP_HEADER_BYTES + slot as u64 * SPEC_BYTES,
                            SPEC_BYTES as u32,
                        );
                    }
                    on_dispatch(ctx, dispatched);
                    dispatched += 1;
                    exec(ctx, item);
                }
            }
            threads_run += bin.threads;
            // Consume the unit. The bin record (and its table key) stay
            // allocated so ids remain stable; a later insert refills it
            // and re-queues its parent with a fresh ready sequence —
            // unless the eviction policy reaps the idle record first,
            // in which case the key re-arrives as a fresh fork.
            let drained = bin.threads;
            bin.groups.clear();
            bin.threads = 0;
            if reap {
                bin.idle_stamp = epoch;
            }
            self.threads -= drained;
        }
        if hierarchical {
            self.obs.parent_occupancy.record(threads_run);
        }
        on_unit(ctx, epoch - 1, false);
        let bins = &self.bins;
        let state = self.online.as_mut().expect("checked above");
        state.dispatched = dispatched;
        if reap {
            for &id in &subs {
                state.idle.push_back((epoch, id));
            }
            // Compact lazily-invalidated entries once they dominate; a
            // bin has at most one valid ticket (the one matching its
            // stamp), so the queue shrinks to ≤ live bins.
            if state.idle.len() > 2 * bins.len() + 16 {
                state
                    .idle
                    .retain(|&(stamp, id)| bins[id as usize].idle_stamp == stamp);
            }
        }
        Some(RunStats {
            threads_run,
            bins_visited,
        })
    }

    /// The order in which bins will be drained.
    ///
    /// Flat policies tour the bin keys directly (the paper's path,
    /// bit-identical to the pre-refactor schedulers). Multi-level
    /// policies tour the *coarsest-level* group keys — so inter-group
    /// order matches the flat policy at that granularity — and drain
    /// each group's bins sorted by their full ancestor ladder,
    /// back-to-back, so every intermediate level's bins also come out
    /// contiguous.
    pub(crate) fn tour_order(&self) -> Vec<BinId> {
        let keys = self.table.keys();
        if self.policy.depth() <= 1 {
            return self.tour.order(keys);
        }
        let mut parent_keys: Vec<[u64; MAX_DIMS]> = Vec::new();
        let mut parent_index: HashMap<[u64; MAX_DIMS], usize> = HashMap::new();
        let mut members: Vec<Vec<BinId>> = Vec::new();
        // Groups in first-appearance (allocation) order, matching the
        // ready-list semantics a flat coarsest-level policy would have.
        for (id, &key) in keys.iter().enumerate() {
            let idx = *parent_index.entry(self.group_key(key)).or_insert_with(|| {
                parent_keys.push(self.group_key(key));
                members.push(Vec::new());
                parent_keys.len() - 1
            });
            members[idx].push(id as BinId);
        }
        let mut order = Vec::with_capacity(keys.len());
        for parent in self.tour.order(&parent_keys) {
            let subs = &mut members[parent as usize];
            subs.sort_unstable_by(|&a, &b| self.nested_cmp(keys[a as usize], keys[b as usize]));
            order.append(subs);
        }
        order
    }

    /// Block-coordinate key of one bin at the coarsest (group)
    /// granularity — the coordinates manhattan-distance stealing scores
    /// over. Identity for flat policies.
    #[inline]
    pub(crate) fn steal_key(&self, id: BinId) -> [u64; MAX_DIMS] {
        self.group_key(self.table.key(id))
    }

    /// The full ancestor ladder of one bin, finest level first — the
    /// coordinates topology-aware stealing scores
    /// lowest-common-ancestor depth over. A single-entry ladder for
    /// flat policies.
    #[inline]
    pub(crate) fn steal_ladder(&self, id: BinId) -> Vec<[u64; MAX_DIMS]> {
        let key = self.table.key(id);
        (0..self.policy.depth())
            .map(|level| self.policy.ancestor_key(key, level))
            .collect()
    }

    /// The allocated bins, indexed by bin id.
    pub(crate) fn bins_slice(&self) -> &[Bin<T>] {
        &self.bins
    }

    /// Drains every bin in tour order: `on_read(ctx, addr, size)` is
    /// called for each package memory reference (only when tracing is
    /// enabled), `on_dispatch(ctx, seq)` immediately before the
    /// `seq`-th thread of this run executes (unconditionally — callers
    /// wanting schedule events pass a forwarder, others a no-op),
    /// `on_unit(ctx, unit, begin)` at each drain-unit boundary (one bin
    /// for flat policies, one parent group's contiguous sub-bins for
    /// nested ones — the granularity work stealing moves whole), and
    /// `exec(ctx, item)` for each thread record. Splitting the sink
    /// access (`on_read`/`on_dispatch`) from thread execution (`exec`)
    /// lets one `&mut ctx` serve both without aliasing.
    pub(crate) fn run_with<X>(
        &mut self,
        ctx: &mut X,
        mode: RunMode,
        mut on_read: impl FnMut(&mut X, Addr, u32),
        mut on_dispatch: impl FnMut(&mut X, u64),
        mut on_unit: impl FnMut(&mut X, u64, bool),
        mut exec: impl FnMut(&mut X, &T),
    ) -> RunStats {
        let order = self.tour_order();
        let tracing = self.meta.is_some();
        let hierarchical = self.policy.depth() > 1;
        let mut threads_run = 0u64;
        let mut bins_visited = 0usize;
        let mut dispatched = 0u64;
        {
            let _run_span = self.obs.run_ns.span();
            // Running total for the current parent group (hierarchical
            // only); the tour keeps each parent's sub-bins contiguous,
            // so one linear pass suffices.
            let mut parent: Option<([u64; MAX_DIMS], u64)> = None;
            // Drain-unit boundary tracking: the unit key is the group
            // (coarsest-level) key, which for flat policies is the bin
            // key itself — each bin its own unit.
            let mut unit_seq = 0u64;
            let mut unit_key: Option<[u64; MAX_DIMS]> = None;
            for id in order {
                let bin = &self.bins[id as usize];
                if bin.threads == 0 {
                    continue;
                }
                bins_visited += 1;
                self.obs.bin_occupancy.record(bin.threads);
                let pk = self.group_key(self.table.key(id));
                if unit_key != Some(pk) {
                    if unit_key.take().is_some() {
                        on_unit(ctx, unit_seq, false);
                        unit_seq += 1;
                    }
                    on_unit(ctx, unit_seq, true);
                    unit_key = Some(pk);
                }
                if hierarchical {
                    self.obs.subbins_run.incr();
                    match &mut parent {
                        Some((key, threads)) if *key == pk => *threads += bin.threads,
                        _ => {
                            if let Some((_, threads)) = parent.take() {
                                self.obs.parent_occupancy.record(threads);
                            }
                            parent = Some((pk, bin.threads));
                        }
                    }
                }
                let _drain_span = self.obs.bin_drain_ns.span();
                if tracing {
                    // Ready-list step: load the bin record.
                    on_read(ctx, bin.header, BIN_HEADER_BYTES as u32);
                }
                for group in &bin.groups {
                    if tracing {
                        // Group header: count + next pointer.
                        on_read(ctx, group.base, GROUP_HEADER_BYTES as u32);
                    }
                    for (slot, item) in group.items.iter().enumerate() {
                        if tracing {
                            on_read(
                                ctx,
                                group.base + GROUP_HEADER_BYTES + slot as u64 * SPEC_BYTES,
                                SPEC_BYTES as u32,
                            );
                        }
                        on_dispatch(ctx, dispatched);
                        dispatched += 1;
                        exec(ctx, item);
                    }
                }
                threads_run += bin.threads;
            }
            if let Some((_, threads)) = parent {
                self.obs.parent_occupancy.record(threads);
            }
            if unit_key.is_some() {
                on_unit(ctx, unit_seq, false);
            }
        }
        if mode == RunMode::Consume {
            self.clear();
        }
        RunStats {
            threads_run,
            bins_visited,
        }
    }

    /// Number of threads currently scheduled.
    pub(crate) fn pending(&self) -> u64 {
        self.threads
    }

    /// Number of bins currently allocated.
    pub(crate) fn bins(&self) -> usize {
        self.table.len()
    }

    /// High-water mark of live bin records over the engine's life —
    /// the number the eviction cap bounds.
    pub(crate) fn peak_bins(&self) -> usize {
        self.peak_bins
    }

    /// Bin records freed by the online eviction policy so far.
    pub(crate) fn evictions(&self) -> u64 {
        self.online.as_ref().map_or(0, |state| state.evictions)
    }

    /// Distribution statistics over the current schedule (live bins
    /// only; slots freed by eviction don't count as empty bins).
    pub(crate) fn stats(&self) -> SchedulerStats {
        SchedulerStats::from_bin_counts(
            self.bins
                .iter()
                .enumerate()
                .filter(|&(id, _)| self.table.is_live(id as BinId))
                .map(|(_, b)| b.threads)
                .collect(),
        )
    }

    /// Flushes the probe observations accumulated so far into a
    /// `"sched"` profile section. Hierarchical policies additionally
    /// report per-parent occupancy and the sub-bin drain count.
    pub(crate) fn run_profile(&self) -> probe::Section {
        let mut section = probe::Section::new("sched");
        section
            .counter("forks", self.obs.forks.get())
            .counter("bins_created", self.obs.bins_created.get())
            .counter("rebin_hits", self.obs.rebin_hits.get())
            .histogram("bin_occupancy", &self.obs.bin_occupancy)
            .histogram("bin_drain_ns", &self.obs.bin_drain_ns)
            .histogram("run_ns", &self.obs.run_ns);
        if self.policy.depth() > 1 {
            section
                .counter("subbins_run", self.obs.subbins_run.get())
                .histogram("parent_occupancy", &self.obs.parent_occupancy);
        }
        // Only online engines can evict; keeping the key out of batch
        // profiles leaves the committed batch-bench baselines untouched.
        if self.online.is_some() {
            section.counter("evictions", self.obs.evictions.get());
        }
        section
    }

    /// Removes all scheduled threads and bins (the arena of a traced
    /// package is recycled, as a real allocator would).
    pub(crate) fn clear(&mut self) {
        self.table.clear();
        self.bins.clear();
        self.threads = 0;
        if let Some(meta) = &mut self.meta {
            meta.bump = meta.arena_base;
        }
        // Incremental mode survives a clear (keeping its eviction
        // policy), restarting from an empty ready list (and dispatch
        // numbering from zero).
        if let Some(state) = &self.online {
            self.online = Some(OnlineState::with_eviction(state.eviction));
        }
    }
}

//! Baseline schedulers for comparison experiments.
//!
//! Both baselines are degenerate configurations of the shared
//! [`BinEngine`](crate::engine::BinEngine):
//!
//! * [`FifoScheduler`] = [`SingleBin`] policy (every thread in one
//!   bin) + allocation-order tour → fork order.
//! * [`RandomScheduler`] = [`UniqueBin`] policy (every thread in its
//!   own bin) + [`Tour::Random`] → a seeded per-thread shuffle,
//!   bit-identical to the pre-refactor implementation (both shuffle
//!   `0..n` with `SmallRng::seed_from_u64(seed)`).

use crate::engine::BinEngine;
use crate::policy::{SingleBin, UniqueBin};
use crate::scheduler::{ThreadScheduler, ThreadSpec};
use crate::stats::RunStats;
use crate::{Hints, RunMode, ThreadFn, Tour};

/// A scheduler that ignores hints and runs threads in fork (FIFO)
/// order.
///
/// Running a threaded program under `FifoScheduler` reproduces the
/// memory-reference order of the original loop nest (plus thread
/// overhead); it is the "what does binning buy over doing nothing"
/// baseline in the ablation benches.
///
/// # Examples
///
/// ```
/// use locality_sched::{FifoScheduler, Hints, RunMode, ThreadScheduler};
///
/// fn body(out: &mut Vec<usize>, i: usize, _j: usize) { out.push(i); }
///
/// let mut sched = FifoScheduler::new();
/// for i in 0..3 {
///     sched.fork(body, i, 0, Hints::none());
/// }
/// let mut out = Vec::new();
/// sched.run(&mut out, RunMode::Consume);
/// assert_eq!(out, vec![0, 1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct FifoScheduler<C> {
    engine: BinEngine<ThreadSpec<C>, SingleBin>,
}

impl<C> FifoScheduler<C> {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler {
            // One bin, so a single hash bucket suffices.
            engine: BinEngine::new(1, Tour::AllocationOrder, SingleBin),
        }
    }
}

impl<C> Default for FifoScheduler<C> {
    fn default() -> Self {
        FifoScheduler::new()
    }
}

impl<C> ThreadScheduler<C> for FifoScheduler<C> {
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, _hints: Hints) {
        self.engine.insert_traced(
            ThreadSpec { func, arg1, arg2 },
            Hints::none(),
            &mut memtrace::NullSink,
        );
    }

    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        self.engine.run_with(
            ctx,
            mode,
            |_, _, _| {},
            |_, _| {},
            |_, _, _| {},
            |ctx, spec| (spec.func)(ctx, spec.arg1, spec.arg2),
        )
    }

    fn pending(&self) -> u64 {
        self.engine.pending()
    }
}

/// A scheduler that ignores hints and runs threads in seeded random
/// order — the adversarial locality baseline (any reference locality in
/// fork order is destroyed).
#[derive(Clone, Debug)]
pub struct RandomScheduler<C> {
    engine: BinEngine<ThreadSpec<C>, UniqueBin>,
}

impl<C> RandomScheduler<C> {
    /// Creates an empty random scheduler with the given shuffle seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            // Unique-key bins are appended, never looked up, so the
            // bucket array is irrelevant; keep it minimal.
            engine: BinEngine::new(1, Tour::Random(seed), UniqueBin::default()),
        }
    }
}

impl<C> ThreadScheduler<C> for RandomScheduler<C> {
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, _hints: Hints) {
        self.engine.insert_traced(
            ThreadSpec { func, arg1, arg2 },
            Hints::none(),
            &mut memtrace::NullSink,
        );
    }

    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        let stats = self.engine.run_with(
            ctx,
            mode,
            |_, _, _| {},
            |_, _| {},
            |_, _, _| {},
            |ctx, spec| (spec.func)(ctx, spec.arg1, spec.arg2),
        );
        RunStats {
            threads_run: stats.threads_run,
            // Single-thread bins are an engine encoding detail; report
            // the baseline's historical "one conceptual bin".
            bins_visited: usize::from(stats.threads_run > 0),
        }
    }

    fn pending(&self) -> u64 {
        self.engine.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    type Log = Vec<usize>;

    fn body(log: &mut Log, i: usize, _j: usize) {
        log.push(i);
    }

    #[test]
    fn fifo_preserves_fork_order() {
        let mut sched: FifoScheduler<Log> = FifoScheduler::new();
        for i in 0..20 {
            sched.fork(body, i, 0, Hints::one(Addr::new(i as u64 * 1_000_000)));
        }
        assert_eq!(sched.pending(), 20);
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 20);
        assert_eq!(log, (0..20).collect::<Vec<_>>());
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn fifo_retain_re_runs() {
        let mut sched: FifoScheduler<Log> = FifoScheduler::new();
        sched.fork(body, 1, 0, Hints::none());
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Retain);
        sched.run(&mut log, RunMode::Consume);
        assert_eq!(log, vec![1, 1]);
    }

    #[test]
    fn random_runs_all_threads_permuted() {
        let mut sched: RandomScheduler<Log> = RandomScheduler::new(99);
        for i in 0..100 {
            sched.fork(body, i, 0, Hints::none());
        }
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 100);
        let mut sorted = log.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(log, sorted, "a 100-element shuffle is ordered w.p. 1/100!");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a_log = Log::new();
        let mut b_log = Log::new();
        for log in [&mut a_log, &mut b_log] {
            let mut sched: RandomScheduler<Log> = RandomScheduler::new(7);
            for i in 0..50 {
                sched.fork(body, i, 0, Hints::none());
            }
            sched.run(log, RunMode::Consume);
        }
        assert_eq!(a_log, b_log);
    }

    /// Execution orders captured from the pre-refactor
    /// `RandomScheduler` (which shuffled thread indices directly):
    /// the engine-based scheduler must reproduce them bit-identically.
    #[test]
    fn random_order_matches_pre_refactor_golden() {
        #[rustfmt::skip]
        let goldens: [(u64, usize, &[usize]); 6] = [
            (7, 16, &[15, 12, 14, 6, 9, 3, 1, 5, 0, 8, 7, 10, 2, 4, 11, 13]),
            (42, 16, &[3, 1, 10, 0, 9, 2, 13, 7, 6, 14, 5, 11, 4, 12, 8, 15]),
            (99, 16, &[1, 7, 5, 0, 11, 10, 9, 12, 13, 6, 3, 14, 8, 2, 15, 4]),
            (7, 33, &[8, 13, 16, 28, 23, 30, 7, 11, 25, 2, 9, 12, 4, 22, 18, 14, 10, 1, 29, 19, 5, 31, 0, 27, 15, 24, 3, 21, 32, 6, 17, 20, 26]),
            (42, 33, &[5, 7, 19, 8, 10, 15, 6, 23, 3, 2, 24, 11, 30, 27, 31, 14, 13, 25, 0, 9, 12, 1, 22, 29, 20, 16, 28, 21, 26, 32, 18, 17, 4]),
            (99, 33, &[31, 7, 20, 0, 28, 24, 13, 15, 32, 19, 16, 2, 17, 12, 11, 18, 23, 27, 9, 25, 4, 5, 8, 29, 26, 22, 14, 10, 30, 1, 3, 6, 21]),
        ];
        for (seed, n, golden) in goldens {
            let mut sched: RandomScheduler<Log> = RandomScheduler::new(seed);
            for i in 0..n {
                sched.fork(body, i, 0, Hints::none());
            }
            let mut log = Log::new();
            sched.run(&mut log, RunMode::Consume);
            assert_eq!(log, golden, "seed={seed} n={n}");
        }
    }

    #[test]
    fn empty_baselines_are_noops() {
        let mut log = Log::new();
        let mut fifo: FifoScheduler<Log> = FifoScheduler::default();
        assert_eq!(fifo.run(&mut log, RunMode::Consume).bins_visited, 0);
        let mut random: RandomScheduler<Log> = RandomScheduler::new(0);
        assert_eq!(random.run(&mut log, RunMode::Consume).threads_run, 0);
    }
}

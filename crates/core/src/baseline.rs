//! Baseline schedulers for comparison experiments.

use crate::scheduler::{ThreadScheduler, ThreadSpec};
use crate::stats::RunStats;
use crate::{Hints, RunMode, ThreadFn};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A scheduler that ignores hints and runs threads in fork (FIFO)
/// order.
///
/// Running a threaded program under `FifoScheduler` reproduces the
/// memory-reference order of the original loop nest (plus thread
/// overhead); it is the "what does binning buy over doing nothing"
/// baseline in the ablation benches.
///
/// # Examples
///
/// ```
/// use locality_sched::{FifoScheduler, Hints, RunMode, ThreadScheduler};
///
/// fn body(out: &mut Vec<usize>, i: usize, _j: usize) { out.push(i); }
///
/// let mut sched = FifoScheduler::new();
/// for i in 0..3 {
///     sched.fork(body, i, 0, Hints::none());
/// }
/// let mut out = Vec::new();
/// sched.run(&mut out, RunMode::Consume);
/// assert_eq!(out, vec![0, 1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct FifoScheduler<C> {
    specs: Vec<ThreadSpec<C>>,
}

impl<C> FifoScheduler<C> {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler { specs: Vec::new() }
    }
}

impl<C> Default for FifoScheduler<C> {
    fn default() -> Self {
        FifoScheduler::new()
    }
}

impl<C> ThreadScheduler<C> for FifoScheduler<C> {
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, _hints: Hints) {
        self.specs.push(ThreadSpec { func, arg1, arg2 });
    }

    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        for spec in &self.specs {
            (spec.func)(ctx, spec.arg1, spec.arg2);
        }
        let stats = RunStats {
            threads_run: self.specs.len() as u64,
            bins_visited: usize::from(!self.specs.is_empty()),
        };
        if mode == RunMode::Consume {
            self.specs.clear();
        }
        stats
    }

    fn pending(&self) -> u64 {
        self.specs.len() as u64
    }
}

/// A scheduler that ignores hints and runs threads in seeded random
/// order — the adversarial locality baseline (any reference locality in
/// fork order is destroyed).
#[derive(Clone, Debug)]
pub struct RandomScheduler<C> {
    specs: Vec<ThreadSpec<C>>,
    seed: u64,
}

impl<C> RandomScheduler<C> {
    /// Creates an empty random scheduler with the given shuffle seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            specs: Vec::new(),
            seed,
        }
    }
}

impl<C> ThreadScheduler<C> for RandomScheduler<C> {
    fn fork(&mut self, func: ThreadFn<C>, arg1: usize, arg2: usize, _hints: Hints) {
        self.specs.push(ThreadSpec { func, arg1, arg2 });
    }

    fn run(&mut self, ctx: &mut C, mode: RunMode) -> RunStats {
        let mut order: Vec<usize> = (0..self.specs.len()).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(self.seed));
        for idx in order {
            let spec = &self.specs[idx];
            (spec.func)(ctx, spec.arg1, spec.arg2);
        }
        let stats = RunStats {
            threads_run: self.specs.len() as u64,
            bins_visited: usize::from(!self.specs.is_empty()),
        };
        if mode == RunMode::Consume {
            self.specs.clear();
        }
        stats
    }

    fn pending(&self) -> u64 {
        self.specs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    type Log = Vec<usize>;

    fn body(log: &mut Log, i: usize, _j: usize) {
        log.push(i);
    }

    #[test]
    fn fifo_preserves_fork_order() {
        let mut sched: FifoScheduler<Log> = FifoScheduler::new();
        for i in 0..20 {
            sched.fork(body, i, 0, Hints::one(Addr::new(i as u64 * 1_000_000)));
        }
        assert_eq!(sched.pending(), 20);
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 20);
        assert_eq!(log, (0..20).collect::<Vec<_>>());
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn fifo_retain_re_runs() {
        let mut sched: FifoScheduler<Log> = FifoScheduler::new();
        sched.fork(body, 1, 0, Hints::none());
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Retain);
        sched.run(&mut log, RunMode::Consume);
        assert_eq!(log, vec![1, 1]);
    }

    #[test]
    fn random_runs_all_threads_permuted() {
        let mut sched: RandomScheduler<Log> = RandomScheduler::new(99);
        for i in 0..100 {
            sched.fork(body, i, 0, Hints::none());
        }
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        assert_eq!(stats.threads_run, 100);
        let mut sorted = log.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(log, sorted, "a 100-element shuffle is ordered w.p. 1/100!");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a_log = Log::new();
        let mut b_log = Log::new();
        for log in [&mut a_log, &mut b_log] {
            let mut sched: RandomScheduler<Log> = RandomScheduler::new(7);
            for i in 0..50 {
                sched.fork(body, i, 0, Hints::none());
            }
            sched.run(log, RunMode::Consume);
        }
        assert_eq!(a_log, b_log);
    }

    #[test]
    fn empty_baselines_are_noops() {
        let mut log = Log::new();
        let mut fifo: FifoScheduler<Log> = FifoScheduler::default();
        assert_eq!(fifo.run(&mut log, RunMode::Consume).bins_visited, 0);
        let mut random: RandomScheduler<Log> = RandomScheduler::new(0);
        assert_eq!(random.run(&mut log, RunMode::Consume).threads_run, 0);
    }
}

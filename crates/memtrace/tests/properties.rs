//! Property-based tests of the tracing substrate.

use memtrace::{
    AccessKind, AddressSpace, CountingSink, MatrixLayout, TracedBuf, TracedMatrix, VecSink,
};
use proptest::prelude::*;

proptest! {
    /// Matrix element addressing is a bijection into the matrix's
    /// region: distinct indices map to distinct, in-bounds addresses.
    #[test]
    fn matrix_addressing_is_bijective(
        rows in 1usize..20,
        cols in 1usize..20,
        row_major in any::<bool>(),
    ) {
        let layout = if row_major { MatrixLayout::RowMajor } else { MatrixLayout::ColMajor };
        let mut space = AddressSpace::new();
        let m = TracedMatrix::zeros(&mut space, rows, cols, layout);
        let mut seen = std::collections::HashSet::new();
        for i in 0..rows {
            for j in 0..cols {
                let addr = m.addr_of(i, j);
                prop_assert!(addr >= m.base());
                prop_assert!(addr.raw() + 8 <= m.base().raw() + m.size_bytes());
                prop_assert!(seen.insert(addr), "duplicate address for ({i},{j})");
            }
        }
    }

    /// A traced get/set emits exactly one access at the element's
    /// address with the element's size and the right kind.
    #[test]
    fn traced_accesses_match_addresses(
        rows in 1usize..16,
        cols in 1usize..16,
        i in 0usize..16,
        j in 0usize..16,
        value in any::<f64>(),
    ) {
        prop_assume!(i < rows && j < cols);
        let mut space = AddressSpace::new();
        let mut m = TracedMatrix::zeros(&mut space, rows, cols, MatrixLayout::ColMajor);
        let mut sink = VecSink::new();
        m.set(i, j, value, &mut sink);
        let got = m.get(i, j, &mut sink);
        if !value.is_nan() {
            prop_assert_eq!(got, value);
        }
        let trace = sink.accesses();
        prop_assert_eq!(trace.len(), 2);
        prop_assert_eq!(trace[0].kind, AccessKind::Write);
        prop_assert_eq!(trace[1].kind, AccessKind::Read);
        for a in trace {
            prop_assert_eq!(a.addr, m.addr_of(i, j));
            prop_assert_eq!(a.size, 8);
        }
    }

    /// Address-space allocations never overlap, whatever the sequence
    /// of sizes and alignments.
    #[test]
    fn allocations_never_overlap(
        requests in prop::collection::vec((1u64..10_000, 0u32..8), 1..50),
    ) {
        let mut space = AddressSpace::new();
        let mut regions = Vec::new();
        for &(len, align_log2) in &requests {
            let base = space.alloc(len, 1 << align_log2);
            regions.push((base.raw(), base.raw() + len));
        }
        regions.sort_unstable();
        for pair in regions.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }

    /// Counting sinks agree with recording sinks on totals.
    #[test]
    fn counting_matches_recording(
        ops in prop::collection::vec((0u64..100_000, any::<bool>(), 1u32..64), 0..200),
    ) {
        use memtrace::{Access, Addr, TraceSink};
        let mut counting = CountingSink::new();
        let mut vec = VecSink::new();
        for &(addr, write, size) in &ops {
            let access = if write {
                Access::write(Addr::new(addr), size)
            } else {
                Access::read(Addr::new(addr), size)
            };
            counting.access(access);
            vec.access(access);
        }
        prop_assert_eq!(counting.data_references() as usize, vec.accesses().len());
        prop_assert_eq!(
            counting.reads() as usize,
            vec.accesses().iter().filter(|a| a.kind == AccessKind::Read).count()
        );
        prop_assert_eq!(
            counting.bytes(),
            vec.accesses().iter().map(|a| u64::from(a.size)).sum::<u64>()
        );
    }

    /// Trace files round-trip arbitrary event streams exactly.
    #[test]
    fn trace_file_roundtrip(
        ops in prop::collection::vec(
            (0u64..u64::MAX / 2, any::<bool>(), 0u32..1024, 0u64..1_000_000),
            0..300
        ),
    ) {
        use memtrace::{Access, Addr, TraceFileReader, TraceFileWriter, TraceSink, VecSink};
        let mut buffer = Vec::new();
        let mut expected = VecSink::new();
        {
            let mut writer = TraceFileWriter::new(&mut buffer);
            for &(addr, write, size, instr) in &ops {
                let access = if write {
                    Access::write(Addr::new(addr), size)
                } else {
                    Access::read(Addr::new(addr), size)
                };
                writer.access(access);
                expected.access(access);
                if instr % 3 == 0 {
                    writer.instructions(instr);
                    expected.instructions(instr);
                }
            }
            writer.finish().expect("in-memory write");
        }
        let mut replayed = VecSink::new();
        TraceFileReader::new(buffer.as_slice())
            .replay(&mut replayed)
            .expect("well-formed stream");
        prop_assert_eq!(replayed.accesses(), expected.accesses());
        prop_assert_eq!(
            replayed.instructions_executed(),
            expected.instructions_executed()
        );
    }

    /// Buffer record addressing has constant stride and field accesses
    /// stay within the record.
    #[test]
    fn buf_field_access_in_bounds(
        len in 1usize..64,
        index in 0usize..64,
        offset in 0u64..24,
        field_len in 1u32..8,
    ) {
        prop_assume!(index < len);
        let mut space = AddressSpace::new();
        let buf: TracedBuf<[f64; 4]> = TracedBuf::new(&mut space, len);
        let mut sink = VecSink::new();
        buf.read_field(index, offset, field_len, &mut sink);
        let access = sink.accesses()[0];
        prop_assert!(access.addr >= buf.addr_of(index));
        prop_assert!(access.end().raw() <= buf.addr_of(index + 1).raw().min(buf.base().raw() + 32 * len as u64));
    }
}

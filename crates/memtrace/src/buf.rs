//! A traced buffer of `Copy` records.

use crate::{Access, Addr, AddressSpace, TraceSink};

/// A fixed-length buffer of `Copy` records living at a stable virtual
/// address, with traced element access.
///
/// Where [`TracedMatrix`](crate::TracedMatrix) covers the dense `f64`
/// arrays of the linear-algebra benchmarks, `TracedBuf` covers record
/// data — the N-body benchmark's body vector and Barnes–Hut tree nodes.
/// A traced [`get`](TracedBuf::get)/[`set`](TracedBuf::set) covers the
/// whole record; field-granular tracing is available through
/// [`read_field`](TracedBuf::read_field) /
/// [`write_field`](TracedBuf::write_field).
///
/// Multi-word touches are emitted as one access per machine word
/// (8 bytes), because that is what the instrumented loads/stores of a
/// Pixie-style trace would contain — reference counts stay comparable
/// with per-element traced containers. Chunk boundaries are aligned to
/// 8-byte word boundaries of the *address*, so a field starting
/// mid-word emits a short head access up to the next word boundary
/// (exactly the loads a real machine would issue), and the whole touch
/// is delivered to the sink as one
/// [`access_batch`](TraceSink::access_batch).
///
/// # Examples
///
/// ```
/// use memtrace::{AddressSpace, CountingSink, TracedBuf};
///
/// let mut space = AddressSpace::new();
/// let mut buf: TracedBuf<[f64; 3]> = TracedBuf::new(&mut space, 10);
/// let mut sink = CountingSink::new();
/// buf.set(3, [1.0, 2.0, 3.0], &mut sink);
/// assert_eq!(buf.get(3, &mut sink)[1], 2.0);
/// assert_eq!(sink.bytes(), 48); // 24 bytes touched each way
/// assert_eq!(sink.reads(), 3); // emitted as word-sized loads
/// ```
#[derive(Clone, Debug)]
pub struct TracedBuf<T> {
    data: Vec<T>,
    base: Addr,
}

impl<T: Copy + Default> TracedBuf<T> {
    /// Allocates a buffer of `len` default-valued records in `space`.
    pub fn new(space: &mut AddressSpace, len: usize) -> Self {
        TracedBuf::from_vec(space, vec![T::default(); len])
    }
}

impl<T: Copy> TracedBuf<T> {
    /// Wraps an existing vector, allocating a region for it in `space`.
    pub fn from_vec(space: &mut AddressSpace, data: Vec<T>) -> Self {
        let bytes = (data.len() as u64) * Self::stride();
        let base = space.alloc_named("buf", bytes, 128);
        TracedBuf { data, base }
    }

    /// Bytes per element.
    #[inline]
    pub fn stride() -> u64 {
        std::mem::size_of::<T>() as u64
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Base virtual address of element 0.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Virtual address of element `index`.
    #[inline]
    pub fn addr_of(&self, index: usize) -> Addr {
        self.base + (index as u64) * Self::stride()
    }

    /// Emits word-granular accesses covering `[addr, addr + len)`,
    /// delivered to the sink as one batch.
    ///
    /// Chunk boundaries fall on 8-byte machine-word boundaries of the
    /// *address*, not at multiples of 8 from the field's start: a field
    /// touch straddling a word boundary costs two loads on a real
    /// machine, and an instrumented (Pixie-style) trace records both.
    /// Chunking from the field offset instead would merge them into one
    /// fictitious straddling access, undercounting references and line
    /// crossings.
    #[inline]
    fn emit<S: TraceSink>(addr: Addr, len: u32, write: bool, sink: &mut S) {
        const WORD: u64 = 8;
        let make: fn(Addr, u32) -> Access = if write { Access::write } else { Access::read };
        let mut batch = [Access::read(addr, 0); 16];
        let mut fill = 0usize;
        let mut off = 0u64;
        let len = u64::from(len);
        while off < len {
            let at = addr + off;
            // Clip the chunk to the enclosing machine word.
            let to_word_end = WORD - (at.raw() % WORD);
            let size = (len - off).min(to_word_end);
            batch[fill] = make(at, size as u32);
            fill += 1;
            if fill == batch.len() {
                sink.access_batch(&batch);
                fill = 0;
            }
            off += size;
        }
        if fill > 0 {
            sink.access_batch(&batch[..fill]);
        }
    }

    /// Traced load of the whole record at `index` (one access per
    /// word).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn get<S: TraceSink>(&self, index: usize, sink: &mut S) -> T {
        Self::emit(self.addr_of(index), Self::stride() as u32, false, sink);
        self.data[index]
    }

    /// Traced store of the whole record at `index` (one access per
    /// word).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn set<S: TraceSink>(&mut self, index: usize, value: T, sink: &mut S) {
        Self::emit(self.addr_of(index), Self::stride() as u32, true, sink);
        self.data[index] = value;
    }

    /// Emits a read of `len` bytes at byte offset `offset` within the
    /// record at `index`, and returns a shared reference to the record.
    ///
    /// Use this when a workload touches only part of a record (e.g. the
    /// mass and centre-of-mass of a tree node but not its child
    /// pointers), so the simulated traffic matches what the real code
    /// would do.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds; debug-panics if the field
    /// range exceeds the record.
    #[inline]
    pub fn read_field<S: TraceSink>(
        &self,
        index: usize,
        offset: u64,
        len: u32,
        sink: &mut S,
    ) -> &T {
        debug_assert!(
            offset + u64::from(len) <= Self::stride(),
            "field out of record bounds"
        );
        Self::emit(self.addr_of(index) + offset, len, false, sink);
        &self.data[index]
    }

    /// Emits a write of `len` bytes at byte offset `offset` within the
    /// record at `index`, and returns an exclusive reference to it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds; debug-panics if the field
    /// range exceeds the record.
    #[inline]
    pub fn write_field<S: TraceSink>(
        &mut self,
        index: usize,
        offset: u64,
        len: u32,
        sink: &mut S,
    ) -> &mut T {
        debug_assert!(
            offset + u64::from(len) <= Self::stride(),
            "field out of record bounds"
        );
        Self::emit(self.addr_of(index) + offset, len, true, sink);
        &mut self.data[index]
    }

    /// Untraced shared access, for initialization and verification.
    #[inline]
    pub fn at(&self, index: usize) -> &T {
        &self.data[index]
    }

    /// Untraced exclusive access, for initialization and verification.
    #[inline]
    pub fn at_mut(&mut self, index: usize) -> &mut T {
        &mut self.data[index]
    }

    /// Untraced view of the whole buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, VecSink};

    #[test]
    fn addresses_follow_stride() {
        let mut space = AddressSpace::new();
        let buf: TracedBuf<[f64; 4]> = TracedBuf::new(&mut space, 8);
        assert_eq!(TracedBuf::<[f64; 4]>::stride(), 32);
        assert_eq!(buf.addr_of(0), buf.base());
        assert_eq!(buf.addr_of(3), buf.base() + 96);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut space = AddressSpace::new();
        let mut buf: TracedBuf<u64> = TracedBuf::new(&mut space, 4);
        let mut sink = CountingSink::new();
        buf.set(2, 99, &mut sink);
        assert_eq!(buf.get(2, &mut sink), 99);
        assert_eq!(sink.reads(), 1);
        assert_eq!(sink.writes(), 1);
        assert_eq!(sink.bytes(), 16);
    }

    #[test]
    fn field_access_emits_partial_reference() {
        let mut space = AddressSpace::new();
        let mut buf: TracedBuf<[f64; 4]> = TracedBuf::new(&mut space, 2);
        *buf.at_mut(1) = [1.0, 2.0, 3.0, 4.0];
        let mut sink = VecSink::new();
        let rec = buf.read_field(1, 8, 16, &mut sink);
        assert_eq!(rec[1], 2.0);
        // 16 bytes are emitted as two word-sized loads.
        let trace = sink.accesses();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].addr, buf.addr_of(1) + 8);
        assert_eq!(trace[0].size, 8);
        assert_eq!(trace[1].addr, buf.addr_of(1) + 16);
        assert_eq!(trace[1].size, 8);
    }

    #[test]
    fn unaligned_field_splits_at_word_boundaries() {
        // read_field(i, 4, 8) touches bytes [4, 12): two machine words.
        // A chunking that starts at the field offset would emit one
        // 8-byte access straddling the word boundary at 8.
        let mut space = AddressSpace::new();
        let buf: TracedBuf<[u64; 2]> = TracedBuf::new(&mut space, 2);
        let mut sink = VecSink::new();
        let _ = buf.read_field(0, 4, 8, &mut sink);
        let trace = sink.accesses();
        assert_eq!(trace.len(), 2, "straddle must cost two loads");
        assert_eq!(trace[0].addr, buf.base() + 4);
        assert_eq!(trace[0].size, 4);
        assert_eq!(trace[1].addr, buf.base() + 8);
        assert_eq!(trace[1].size, 4);
        // No access crosses a word boundary.
        for a in trace {
            assert_eq!(
                a.addr.raw() / 8,
                (a.addr.raw() + u64::from(a.size) - 1) / 8,
                "access {a:?} straddles a machine word"
            );
        }
    }

    #[test]
    fn long_record_flushes_in_batches() {
        // 24 u64 words = 192 bytes: one full 16-access batch + 8 more.
        let mut space = AddressSpace::new();
        let mut buf: TracedBuf<[u64; 24]> = TracedBuf::new(&mut space, 1);
        let mut sink = VecSink::new();
        buf.set(0, [7u64; 24], &mut sink);
        let trace = sink.accesses();
        assert_eq!(trace.len(), 24);
        for (w, a) in trace.iter().enumerate() {
            assert_eq!(a.addr, buf.base() + 8 * w as u64);
            assert_eq!(a.size, 8);
        }
    }

    #[test]
    fn write_field_mutates() {
        let mut space = AddressSpace::new();
        let mut buf: TracedBuf<[f64; 2]> = TracedBuf::new(&mut space, 2);
        let mut sink = CountingSink::new();
        buf.write_field(0, 0, 8, &mut sink)[0] = 7.0;
        assert_eq!(buf.at(0)[0], 7.0);
        assert_eq!(sink.writes(), 1);
    }

    #[test]
    fn from_vec_preserves_contents() {
        let mut space = AddressSpace::new();
        let buf = TracedBuf::from_vec(&mut space, vec![10u32, 20, 30]);
        assert_eq!(buf.as_slice(), &[10, 20, 30]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let mut space = AddressSpace::new();
        let buf: TracedBuf<u64> = TracedBuf::new(&mut space, 1);
        let _ = buf.get(1, &mut CountingSink::new());
    }
}

//! Binary trace files — the literal equivalent of the paper's Pixie
//! output ("by directly reading the binary Pixie trace output").
//!
//! The in-process [`SimSink`](crate::TraceSink) pipeline never needs a
//! trace file, but decoupled workflows do: record a workload once,
//! replay it through many cache configurations. The format is a flat
//! little-endian record stream:
//!
//! ```text
//! 0x01 addr:u64 size:u32          read
//! 0x02 addr:u64 size:u32          write
//! 0x03 count:u64                  instructions
//! 0x04 seq:u64                    thread dispatch (schedule event)
//! 0x05 count:u8 addr:u64 × count  thread fork hints (schedule event)
//! 0x06                            run end (schedule event)
//! ```
//!
//! The schedule-event records (0x04–0x06) mirror the optional
//! [`TraceSink`] schedule methods, so a recorded trace of a *traced
//! scheduler run* replays losslessly into schedule-aware sinks such as
//! [`FootprintSink`](crate::FootprintSink). Hint records carry at most
//! [`MAX_TRACE_HINTS`] addresses; longer hint lists are truncated on
//! write (no scheduler in this package forks with more).
//!
//! # Word-alignment convention
//!
//! Traced containers split multi-word touches into machine-word
//! (8-byte) chunks whose boundaries fall on 8-byte boundaries of the
//! *address* (see [`TracedBuf`](crate::TracedBuf)): no access record
//! they produce straddles an 8-byte word, exactly as the instrumented
//! loads/stores of a real Pixie trace cannot. The format itself does
//! not enforce this — foreign or hand-written traces may carry
//! arbitrary `(addr, size)` pairs, including sizes that span many cache
//! lines and addresses near `u64::MAX`. Consumers must therefore treat
//! records as untrusted: the simulator clamps line spans instead of
//! trusting `addr + size` not to overflow, and
//! [`TraceFileReader::replay`] reports truncation or unknown tags as
//! errors, never panics.

use crate::{Access, AccessKind, Addr, TraceSink};
use std::io::{self, BufReader, BufWriter, Read, Write};

const TAG_READ: u8 = 0x01;
const TAG_WRITE: u8 = 0x02;
const TAG_INSTR: u8 = 0x03;
const TAG_THREAD_BEGIN: u8 = 0x04;
const TAG_THREAD_HINTS: u8 = 0x05;
const TAG_RUN_END: u8 = 0x06;

/// Maximum hint addresses one 0x05 record can carry.
pub const MAX_TRACE_HINTS: usize = 8;

/// The hint list of one forked thread, as stored in a trace file:
/// a fixed-capacity inline array so [`TraceEvent`] stays `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHints {
    addrs: [Addr; MAX_TRACE_HINTS],
    len: u8,
}

impl TraceHints {
    /// Packs a hint slice, truncating past [`MAX_TRACE_HINTS`].
    pub fn new(hints: &[Addr]) -> Self {
        let len = hints.len().min(MAX_TRACE_HINTS);
        let mut addrs = [Addr::NULL; MAX_TRACE_HINTS];
        addrs[..len].copy_from_slice(&hints[..len]);
        TraceHints {
            addrs,
            len: len as u8,
        }
    }

    /// The stored hint addresses.
    pub fn as_slice(&self) -> &[Addr] {
        &self.addrs[..usize::from(self.len)]
    }
}

/// One record of a trace file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A memory reference.
    Access(Access),
    /// An instruction-count batch.
    Instructions(u64),
    /// Dispatch of the `seq`-th thread of the current scheduler run.
    ThreadBegin(u64),
    /// Fork of a thread with the given hint addresses.
    ThreadHints(TraceHints),
    /// End of a scheduler run.
    RunEnd,
}

/// A [`TraceSink`] that serializes the trace to a writer.
///
/// # Examples
///
/// ```
/// use memtrace::{Addr, TraceFileReader, TraceFileWriter, TraceSink, VecSink};
///
/// let mut buffer = Vec::new();
/// {
///     let mut writer = TraceFileWriter::new(&mut buffer);
///     writer.read(Addr::new(0x100), 8);
///     writer.instructions(5);
///     writer.finish()?;
/// }
/// // Replay into any sink.
/// let mut sink = VecSink::new();
/// TraceFileReader::new(buffer.as_slice()).replay(&mut sink)?;
/// assert_eq!(sink.accesses().len(), 1);
/// assert_eq!(sink.instructions_executed(), 5);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct TraceFileWriter<W: Write> {
    out: BufWriter<W>,
    /// First I/O error encountered (writing is infallible per event;
    /// check at `finish`).
    error: Option<io::Error>,
    events: u64,
}

impl<W: Write> TraceFileWriter<W> {
    /// Creates a writer over `out` (buffered internally; pass the raw
    /// writer).
    pub fn new(out: W) -> Self {
        TraceFileWriter {
            out: BufWriter::new(out),
            error: None,
            events: 0,
        }
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn emit(&mut self, bytes: &[u8]) {
        if self.error.is_none() {
            if let Err(e) = self.out.write_all(bytes) {
                self.error = Some(e);
            } else {
                self.events += 1;
            }
        }
    }

    /// Flushes the stream and surfaces any deferred I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while writing or flushing.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

fn encode_access(access: Access) -> [u8; 13] {
    let tag = match access.kind {
        AccessKind::Read => TAG_READ,
        AccessKind::Write => TAG_WRITE,
    };
    let mut record = [0u8; 13];
    record[0] = tag;
    record[1..9].copy_from_slice(&access.addr.raw().to_le_bytes());
    record[9..13].copy_from_slice(&access.size.to_le_bytes());
    record
}

impl<W: Write> TraceSink for TraceFileWriter<W> {
    fn access(&mut self, access: Access) {
        self.emit(&encode_access(access));
    }

    fn access_batch(&mut self, accesses: &[Access]) {
        // Encode the whole batch into one contiguous buffer: one
        // `write_all` on the buffered stream instead of one per record.
        let mut encoded = Vec::with_capacity(accesses.len() * 13);
        for &access in accesses {
            encoded.extend_from_slice(&encode_access(access));
        }
        if self.error.is_none() {
            if let Err(e) = self.out.write_all(&encoded) {
                self.error = Some(e);
            } else {
                self.events += accesses.len() as u64;
            }
        }
    }

    fn instructions(&mut self, count: u64) {
        let mut record = [0u8; 9];
        record[0] = TAG_INSTR;
        record[1..9].copy_from_slice(&count.to_le_bytes());
        self.emit(&record);
    }

    fn thread_begin(&mut self, seq: u64) {
        let mut record = [0u8; 9];
        record[0] = TAG_THREAD_BEGIN;
        record[1..9].copy_from_slice(&seq.to_le_bytes());
        self.emit(&record);
    }

    fn thread_hints(&mut self, hints: &[Addr]) {
        let packed = TraceHints::new(hints);
        let mut record = Vec::with_capacity(2 + packed.as_slice().len() * 8);
        record.push(TAG_THREAD_HINTS);
        record.push(packed.len);
        for addr in packed.as_slice() {
            record.extend_from_slice(&addr.raw().to_le_bytes());
        }
        self.emit(&record);
    }

    fn run_end(&mut self) {
        self.emit(&[TAG_RUN_END]);
    }
}

/// Reads a trace file back as an iterator of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceFileReader<R: Read> {
    input: BufReader<R>,
}

impl<R: Read> TraceFileReader<R> {
    /// Creates a reader over `input` (buffered internally).
    pub fn new(input: R) -> Self {
        TraceFileReader {
            input: BufReader::new(input),
        }
    }

    /// Reads the next event, `Ok(None)` at clean end-of-stream.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, a truncated record, or an
    /// unknown tag.
    pub fn next_event(&mut self) -> io::Result<Option<TraceEvent>> {
        let mut tag = [0u8; 1];
        match self.input.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        match tag[0] {
            TAG_READ | TAG_WRITE => {
                let mut payload = [0u8; 12];
                self.input.read_exact(&mut payload)?;
                let addr = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
                let size = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
                let access = if tag[0] == TAG_READ {
                    Access::read(Addr::new(addr), size)
                } else {
                    Access::write(Addr::new(addr), size)
                };
                Ok(Some(TraceEvent::Access(access)))
            }
            TAG_INSTR => {
                let mut payload = [0u8; 8];
                self.input.read_exact(&mut payload)?;
                Ok(Some(TraceEvent::Instructions(u64::from_le_bytes(payload))))
            }
            TAG_THREAD_BEGIN => {
                let mut payload = [0u8; 8];
                self.input.read_exact(&mut payload)?;
                Ok(Some(TraceEvent::ThreadBegin(u64::from_le_bytes(payload))))
            }
            TAG_THREAD_HINTS => {
                let mut count = [0u8; 1];
                self.input.read_exact(&mut count)?;
                let count = usize::from(count[0]);
                if count > MAX_TRACE_HINTS {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("hint record carries {count} addresses (max {MAX_TRACE_HINTS})"),
                    ));
                }
                let mut addrs = [Addr::NULL; MAX_TRACE_HINTS];
                for slot in addrs.iter_mut().take(count) {
                    let mut payload = [0u8; 8];
                    self.input.read_exact(&mut payload)?;
                    *slot = Addr::new(u64::from_le_bytes(payload));
                }
                Ok(Some(TraceEvent::ThreadHints(TraceHints {
                    addrs,
                    len: count as u8,
                })))
            }
            TAG_RUN_END => Ok(Some(TraceEvent::RunEnd)),
            unknown => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown trace record tag {unknown:#04x}"),
            )),
        }
    }

    /// Replays the whole trace into `sink`, returning the event count.
    ///
    /// # Errors
    ///
    /// Returns an error if the stream is corrupt or truncated.
    pub fn replay<S: TraceSink>(mut self, sink: &mut S) -> io::Result<u64> {
        let mut events = 0;
        while let Some(event) = self.next_event()? {
            match event {
                TraceEvent::Access(a) => sink.access(a),
                TraceEvent::Instructions(n) => sink.instructions(n),
                TraceEvent::ThreadBegin(seq) => sink.thread_begin(seq),
                TraceEvent::ThreadHints(h) => sink.thread_hints(h.as_slice()),
                TraceEvent::RunEnd => sink.run_end(),
            }
            events += 1;
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, VecSink};

    #[test]
    fn roundtrip_preserves_everything() {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceFileWriter::new(&mut buffer);
            writer.read(Addr::new(0x1000), 8);
            writer.write(Addr::new(0x2000), 4);
            writer.instructions(42);
            writer.read(Addr::new(u64::MAX - 7), 1);
            assert_eq!(writer.events(), 4);
            writer.finish().unwrap();
        }
        let mut sink = VecSink::new();
        let events = TraceFileReader::new(buffer.as_slice())
            .replay(&mut sink)
            .unwrap();
        assert_eq!(events, 4);
        assert_eq!(
            sink.accesses(),
            &[
                Access::read(Addr::new(0x1000), 8),
                Access::write(Addr::new(0x2000), 4),
                Access::read(Addr::new(u64::MAX - 7), 1),
            ]
        );
        assert_eq!(sink.instructions_executed(), 42);
    }

    #[test]
    fn empty_trace_replays_cleanly() {
        let buffer: Vec<u8> = Vec::new();
        let mut sink = CountingSink::new();
        let events = TraceFileReader::new(buffer.as_slice())
            .replay(&mut sink)
            .unwrap();
        assert_eq!(events, 0);
        assert_eq!(sink.data_references(), 0);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceFileWriter::new(&mut buffer);
            writer.read(Addr::new(0x1000), 8);
            writer.finish().unwrap();
        }
        buffer.truncate(buffer.len() - 3);
        let err = TraceFileReader::new(buffer.as_slice())
            .replay(&mut CountingSink::new())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let buffer = vec![0xffu8, 0, 0];
        let err = TraceFileReader::new(buffer.as_slice())
            .replay(&mut CountingSink::new())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("0xff"));
    }

    #[test]
    fn schedule_events_roundtrip_into_footprints() {
        use crate::FootprintSink;

        let mut buffer = Vec::new();
        {
            let mut writer = TraceFileWriter::new(&mut buffer);
            writer.thread_hints(&[Addr::new(0x100), Addr::new(0x200)]);
            writer.thread_hints(&[]);
            writer.thread_begin(0);
            writer.write(Addr::new(0x100), 8);
            writer.thread_begin(1);
            writer.read(Addr::new(0x300), 8);
            writer.run_end();
            assert_eq!(writer.events(), 7);
            writer.finish().unwrap();
        }
        let mut sink = FootprintSink::new();
        let events = TraceFileReader::new(buffer.as_slice())
            .replay(&mut sink)
            .unwrap();
        assert_eq!(events, 7);
        let phases = sink.into_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].hints[0], vec![Addr::new(0x100), Addr::new(0x200)]);
        assert_eq!(phases[0].hints[1], Vec::<Addr>::new());
        assert!(phases[0].dispatches[0].write_words().contains(&(0x100 / 8)));
        assert!(phases[0].dispatches[1].read_words().contains(&(0x300 / 8)));
    }

    #[test]
    fn oversized_hint_list_truncates_on_write() {
        let hints: Vec<Addr> = (0..12).map(|i| Addr::new(0x1000 + i * 8)).collect();
        let mut buffer = Vec::new();
        {
            let mut writer = TraceFileWriter::new(&mut buffer);
            writer.thread_hints(&hints);
            writer.finish().unwrap();
        }
        let event = TraceFileReader::new(buffer.as_slice())
            .next_event()
            .unwrap()
            .unwrap();
        match event {
            TraceEvent::ThreadHints(h) => {
                assert_eq!(h.as_slice(), &hints[..MAX_TRACE_HINTS]);
            }
            other => panic!("expected hint record, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_hint_count_is_an_error() {
        let buffer = vec![TAG_THREAD_HINTS, 200];
        let err = TraceFileReader::new(buffer.as_slice())
            .replay(&mut CountingSink::new())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k-event loop is too slow under the interpreter")]
    fn large_trace_roundtrips_by_count() {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceFileWriter::new(&mut buffer);
            for i in 0..10_000u64 {
                writer.read(Addr::new(i * 8), 8);
                if i % 10 == 0 {
                    writer.instructions(3);
                }
            }
            writer.finish().unwrap();
        }
        let mut sink = CountingSink::new();
        TraceFileReader::new(buffer.as_slice())
            .replay(&mut sink)
            .unwrap();
        assert_eq!(sink.reads(), 10_000);
        assert_eq!(sink.instructions_executed(), 3_000);
    }
}

//! Compact delta-encoded trace records.
//!
//! A [`CompactBuf`] stores a batch of [`Access`] records in a flat byte
//! buffer: one flag byte per record, the address as a zigzag LEB128
//! varint delta against the previous record, and the size only when it
//! differs from the previous record's. Strided kernels encode in 2–3
//! bytes per access (vs 16 for the in-memory struct), so a multi-million
//! record shard queue stays cache-resident while it waits to be drained.
//!
//! The encoding is lossless for every possible `Access` (address deltas
//! wrap through `u64`), and the decoder is total: any byte sequence
//! decodes to some access sequence or terminates early — it never
//! panics, which the trace-replay fuzz suite relies on.
//!
//! # Examples
//!
//! ```
//! use memtrace::{Access, Addr, CompactBuf};
//!
//! let mut buf = CompactBuf::new();
//! buf.push(Access::read(Addr::new(0x1000), 8));
//! buf.push(Access::read(Addr::new(0x1008), 8)); // Δ=+8, same size: 2 bytes
//! buf.push(Access::write(Addr::new(0x1008), 8));
//! assert_eq!(buf.len(), 3);
//! let decoded: Vec<_> = buf.iter().collect();
//! assert_eq!(decoded[2], Access::write(Addr::new(0x1008), 8));
//! ```

use crate::access::{Access, AccessKind, Addr};

/// Flag bit 0: the record is a write (clear = read).
pub const FLAG_WRITE: u8 = 1 << 0;
/// Flag bit 1: the record reuses the previous record's size (no size
/// varint follows).
pub const FLAG_SAME_SIZE: u8 = 1 << 1;

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
///
/// Public so sibling encoders (the cache simulator's shard queues embed
/// extra record types around the same wire idiom) share one varint
/// implementation.
#[inline]
pub fn push_varint(bytes: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            bytes.push(b);
            return;
        }
        bytes.push(b | 0x80);
    }
}

/// Reads an LEB128 varint starting at `*pos`. Returns `None` on a
/// truncated buffer; bits past the 64th are discarded rather than
/// overflowing, so arbitrary input can never panic.
#[inline]
pub fn take_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift < 64 {
            v |= u64::from(b & 0x7f) << shift;
        }
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2 → 0, 1, 2, 3).
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A growable batch of delta-encoded accesses. See the module docs for
/// the wire format.
#[derive(Clone, Debug, Default)]
pub struct CompactBuf {
    bytes: Vec<u8>,
    records: usize,
    prev_addr: u64,
    prev_size: u32,
}

impl CompactBuf {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        CompactBuf::default()
    }

    /// Appends one access.
    #[inline]
    pub fn push(&mut self, access: Access) {
        let addr = access.addr.raw();
        let delta = addr.wrapping_sub(self.prev_addr) as i64;
        let mut flags = 0u8;
        if access.kind == AccessKind::Write {
            flags |= FLAG_WRITE;
        }
        if access.size == self.prev_size {
            flags |= FLAG_SAME_SIZE;
        }
        self.bytes.push(flags);
        push_varint(&mut self.bytes, zigzag(delta));
        if flags & FLAG_SAME_SIZE == 0 {
            push_varint(&mut self.bytes, u64::from(access.size));
            self.prev_size = access.size;
        }
        self.prev_addr = addr;
        self.records += 1;
    }

    /// Number of records encoded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records
    }

    /// `true` if no records are encoded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Size of the encoded byte stream.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Removes all records, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.records = 0;
        self.prev_addr = 0;
        self.prev_size = 0;
    }

    /// The raw encoded bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Decodes the records in insertion order.
    #[must_use]
    pub fn iter(&self) -> CompactIter<'_> {
        CompactIter::new(&self.bytes)
    }
}

impl<'a> IntoIterator for &'a CompactBuf {
    type Item = Access;
    type IntoIter = CompactIter<'a>;

    fn into_iter(self) -> CompactIter<'a> {
        self.iter()
    }
}

impl Extend<Access> for CompactBuf {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        for access in iter {
            self.push(access);
        }
    }
}

/// Streaming decoder over a compact byte buffer.
///
/// Total over arbitrary input: a record whose varint is truncated by the
/// end of the buffer simply ends the iteration.
#[derive(Clone, Debug)]
pub struct CompactIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev_addr: u64,
    prev_size: u32,
}

impl<'a> CompactIter<'a> {
    /// Decodes `bytes` as a compact record stream. Any byte sequence is
    /// accepted; malformed tails terminate the stream early.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        CompactIter {
            bytes,
            pos: 0,
            prev_addr: 0,
            prev_size: 0,
        }
    }
}

impl Iterator for CompactIter<'_> {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        let flags = *self.bytes.get(self.pos)?;
        let mut pos = self.pos + 1;
        let delta = unzigzag(take_varint(self.bytes, &mut pos)?);
        let size = if flags & FLAG_SAME_SIZE == 0 {
            // Sizes wider than u32 cannot be produced by the encoder;
            // treat a hostile varint as its low 32 bits.
            take_varint(self.bytes, &mut pos)? as u32
        } else {
            self.prev_size
        };
        self.pos = pos;
        self.prev_addr = self.prev_addr.wrapping_add(delta as u64);
        self.prev_size = size;
        let addr = Addr::new(self.prev_addr);
        Some(if flags & FLAG_WRITE == 0 {
            Access::read(addr, size)
        } else {
            Access::write(addr, size)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(accesses: &[Access]) {
        let mut buf = CompactBuf::new();
        buf.extend(accesses.iter().copied());
        assert_eq!(buf.len(), accesses.len());
        let decoded: Vec<_> = buf.iter().collect();
        assert_eq!(decoded, accesses);
    }

    #[test]
    fn empty_buffer_round_trips() {
        round_trip(&[]);
        let buf = CompactBuf::new();
        assert!(buf.is_empty());
        assert_eq!(buf.byte_len(), 0);
    }

    #[test]
    fn strided_reads_encode_two_bytes_per_record() {
        let mut buf = CompactBuf::new();
        for i in 0..100u64 {
            buf.push(Access::read(Addr::new(0x1000 + i * 8), 8));
        }
        // First record: flag + 2-byte delta + size byte. Every later
        // record: flag + 1-byte delta (Δ=8 zigzags to 16).
        assert_eq!(buf.byte_len(), 4 + 99 * 2);
        let decoded: Vec<_> = buf.iter().collect();
        assert_eq!(decoded.len(), 100);
        assert_eq!(decoded[99], Access::read(Addr::new(0x1000 + 99 * 8), 8));
    }

    #[test]
    fn mixed_kinds_sizes_and_backward_deltas_round_trip() {
        round_trip(&[
            Access::write(Addr::new(0xffff_ffff_ffff_fff0), 4),
            Access::read(Addr::new(0), 1),
            Access::read(Addr::new(u64::MAX), u32::MAX),
            Access::write(Addr::new(0x10), 0),
            Access::write(Addr::new(0x10), 0),
        ]);
    }

    #[test]
    fn clear_resets_delta_state() {
        let mut buf = CompactBuf::new();
        buf.push(Access::read(Addr::new(0x4000), 8));
        buf.clear();
        assert!(buf.is_empty());
        buf.push(Access::read(Addr::new(0x4000), 8));
        let decoded: Vec<_> = buf.iter().collect();
        assert_eq!(decoded, vec![Access::read(Addr::new(0x4000), 8)]);
    }

    #[test]
    fn zigzag_is_self_inverse_at_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1 << 62, -(1 << 62)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_and_arbitrary_bytes_never_panic() {
        let mut buf = CompactBuf::new();
        for i in 0..10u64 {
            buf.push(Access::write(Addr::new(i * 4096), 16));
        }
        let bytes = buf.as_bytes();
        for cut in 0..bytes.len() {
            let n = CompactIter::new(&bytes[..cut]).count();
            assert!(n <= 10);
        }
        // A run of continuation bytes (high bit set) must terminate
        // without overflowing the shift.
        let hostile = vec![0x00u8; 1]
            .into_iter()
            .chain([0xffu8; 64])
            .collect::<Vec<_>>();
        let _ = CompactIter::new(&hostile).count();
    }
}

//! Addresses and individual memory references.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A virtual byte address in a traced program's address space.
///
/// `Addr` is a newtype over `u64`, so address arithmetic must be explicit
/// — a raw `u64` offset cannot silently be used where an address is
/// expected. Addresses double as the *scheduling hints* of the locality
/// scheduler, exactly as in the paper (§2.3: "the k addresses associated
/// with a thread act as hints to the scheduler").
///
/// # Examples
///
/// ```
/// use memtrace::Addr;
///
/// let base = Addr::new(0x1000);
/// assert_eq!(base + 8, Addr::new(0x1008));
/// assert_eq!((base + 8) - base, 8);
/// assert_eq!(base.align_up(64), Addr::new(0x1000));
/// assert_eq!(Addr::new(0x1001).align_up(64), Addr::new(0x1040));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Used by the scheduler to mean "no hint in this
    /// dimension", mirroring the paper's `th_fork(..., hint3 = 0)`.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Rounds this address up to the next multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[inline]
    pub fn align_up(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr((self.0 + align - 1) & !(align - 1))
    }

    /// Returns the cache-line index of this address for `line_size`-byte
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 / line_size
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, offset: u64) -> Addr {
        Addr(self.0 + offset)
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, offset: u64) {
        self.0 += offset;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    /// Byte distance between two addresses.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `rhs > self`.
    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        debug_assert!(self.0 >= rhs.0, "address subtraction underflow");
        self.0 - rhs.0
    }
}

/// Whether a memory reference reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// One memory reference: an address, a size in bytes, and a kind.
///
/// This is the unit a [`TraceSink`](crate::TraceSink) consumes — the
/// same information one record of a Pixie data-reference trace carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// First byte touched.
    pub addr: Addr,
    /// Number of bytes touched. Accesses may span cache lines; simulators
    /// must split them.
    pub size: u32,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// Creates a read access.
    #[inline]
    pub const fn read(addr: Addr, size: u32) -> Self {
        Access {
            addr,
            size,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    #[inline]
    pub const fn write(addr: Addr, size: u32) -> Self {
        Access {
            addr,
            size,
            kind: AccessKind::Write,
        }
    }

    /// Address one past the last byte touched.
    #[inline]
    pub fn end(self) -> Addr {
        self.addr + u64::from(self.size)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}+{}", self.kind, self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(100);
        assert_eq!((a + 28).raw(), 128);
        assert_eq!((a + 28) - a, 28);
        let mut b = a;
        b += 4;
        assert_eq!(b.raw(), 104);
    }

    #[test]
    fn addr_align_up() {
        assert_eq!(Addr::new(0).align_up(64), Addr::new(0));
        assert_eq!(Addr::new(1).align_up(64), Addr::new(64));
        assert_eq!(Addr::new(64).align_up(64), Addr::new(64));
        assert_eq!(Addr::new(65).align_up(128), Addr::new(128));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_align_up_rejects_non_power_of_two() {
        let _ = Addr::new(1).align_up(48);
    }

    #[test]
    fn addr_line_index() {
        assert_eq!(Addr::new(0).line(128), 0);
        assert_eq!(Addr::new(127).line(128), 0);
        assert_eq!(Addr::new(128).line(128), 1);
    }

    #[test]
    fn addr_null() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(1).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn addr_conversions() {
        let a: Addr = 42u64.into();
        let r: u64 = a.into();
        assert_eq!(r, 42);
    }

    #[test]
    fn access_constructors() {
        let r = Access::read(Addr::new(8), 8);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.end(), Addr::new(16));
        let w = Access::write(Addr::new(0), 4);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.end(), Addr::new(4));
    }

    #[test]
    fn access_display() {
        let a = Access::read(Addr::new(16), 8);
        assert_eq!(a.to_string(), "read 0x10+8");
    }
}

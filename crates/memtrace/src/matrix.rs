//! A dense `f64` matrix whose element accesses emit trace events.

use crate::{Addr, AddressSpace, TraceSink};

/// Element storage order of a [`TracedMatrix`].
///
/// The paper's Fortran benchmarks (matmul, PDE, SOR) are column-major;
/// the C N-body benchmark is row-major. §4 notes "either layout works
/// with our scheduler", and both are supported here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatrixLayout {
    /// Consecutive elements of a *row* are adjacent in memory (C).
    RowMajor,
    /// Consecutive elements of a *column* are adjacent in memory (Fortran).
    ColMajor,
}

/// A dense matrix of `f64` living at a fixed virtual address, whose
/// [`get`](TracedMatrix::get)/[`set`](TracedMatrix::set) accessors emit
/// one [`Access`](crate::Access) per element touch into a caller-supplied
/// [`TraceSink`].
///
/// Untraced accessors ([`at`](TracedMatrix::at),
/// [`set_untraced`](TracedMatrix::set_untraced)) exist for
/// initialization and verification, mirroring the paper's exclusion of
/// "program initialization costs" from its simulations.
///
/// # Examples
///
/// ```
/// use memtrace::{AddressSpace, MatrixLayout, NullSink, TracedMatrix};
///
/// let mut space = AddressSpace::new();
/// let mut m = TracedMatrix::zeros(&mut space, 2, 3, MatrixLayout::ColMajor);
/// m.set(1, 2, 5.0, &mut NullSink);
/// assert_eq!(m.get(1, 2, &mut NullSink), 5.0);
/// // Column-major: (i, j) lives at base + 8 * (j * rows + i).
/// assert_eq!(m.addr_of(1, 2), m.base() + 8 * (2 * 2 + 1));
/// ```
#[derive(Clone, Debug)]
pub struct TracedMatrix {
    data: Vec<f64>,
    base: Addr,
    rows: usize,
    cols: usize,
    layout: MatrixLayout,
}

/// Size of one element in bytes.
pub(crate) const ELEM: u64 = 8;

impl TracedMatrix {
    /// Allocates a `rows × cols` zero matrix in `space`.
    ///
    /// The backing region is cache-line (128-byte) aligned so that
    /// simulated line boundaries are realistic.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(space: &mut AddressSpace, rows: usize, cols: usize, layout: MatrixLayout) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        let base = space.alloc_named("matrix", (len as u64) * ELEM, 128);
        TracedMatrix {
            data: vec![0.0; len],
            base,
            rows,
            cols,
            layout,
        }
    }

    /// Allocates a matrix and fills `(i, j)` with `f(i, j)` (untraced).
    pub fn from_fn(
        space: &mut AddressSpace,
        rows: usize,
        cols: usize,
        layout: MatrixLayout,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut m = TracedMatrix::zeros(space, rows, cols, layout);
        for i in 0..rows {
            for j in 0..cols {
                m.set_untraced(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage order.
    pub fn layout(&self) -> MatrixLayout {
        self.layout
    }

    /// Base virtual address of element (0, 0).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Total bytes occupied.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() as u64) * ELEM
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        match self.layout {
            MatrixLayout::RowMajor => i * self.cols + j,
            MatrixLayout::ColMajor => j * self.rows + i,
        }
    }

    /// Virtual address of element `(i, j)`.
    ///
    /// This is what workloads pass to the scheduler as a hint (e.g. the
    /// paper's `th_fork(DotProduct, i, j, A[1,i], B[1,j])` passes
    /// column base addresses).
    #[inline]
    pub fn addr_of(&self, i: usize, j: usize) -> Addr {
        self.base + (self.index(i, j) as u64) * ELEM
    }

    /// Virtual address of the first element of column `j`.
    #[inline]
    pub fn col_addr(&self, j: usize) -> Addr {
        self.addr_of(0, j)
    }

    /// Virtual address of the first element of row `i`.
    #[inline]
    pub fn row_addr(&self, i: usize) -> Addr {
        self.addr_of(i, 0)
    }

    /// Traced load of element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index is out of bounds.
    #[inline]
    pub fn get<S: TraceSink>(&self, i: usize, j: usize, sink: &mut S) -> f64 {
        let idx = self.index(i, j);
        sink.read(self.base + (idx as u64) * ELEM, ELEM as u32);
        self.data[idx]
    }

    /// Traced store of element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index is out of bounds.
    #[inline]
    pub fn set<S: TraceSink>(&mut self, i: usize, j: usize, value: f64, sink: &mut S) {
        let idx = self.index(i, j);
        sink.write(self.base + (idx as u64) * ELEM, ELEM as u32);
        self.data[idx] = value;
    }

    /// Traced load of `K` elements, emitted to the sink as one
    /// [`access_batch`](TraceSink::access_batch) in the given order.
    ///
    /// Exactly equivalent to `K` consecutive [`get`](TracedMatrix::get)
    /// calls — same accesses, same order — but the sink sees one slice,
    /// which lets an online cache simulation amortize its dispatch
    /// overhead across the batch. Workload inner loops (a stencil's
    /// neighbour reads, an unrolled dot-product step) use this on their
    /// hot paths.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any index is out of bounds.
    #[inline]
    pub fn get_batch<const K: usize, S: TraceSink>(
        &self,
        at: [(usize, usize); K],
        sink: &mut S,
    ) -> [f64; K] {
        let mut batch = [crate::Access::read(self.base, ELEM as u32); K];
        let mut values = [0.0f64; K];
        for (slot, &(i, j)) in at.iter().enumerate() {
            let idx = self.index(i, j);
            batch[slot] = crate::Access::read(self.base + (idx as u64) * ELEM, ELEM as u32);
            values[slot] = self.data[idx];
        }
        sink.access_batch(&batch);
        values
    }

    /// Untraced load, for initialization and verification only.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)]
    }

    /// Untraced store, for initialization and verification only.
    #[inline]
    pub fn set_untraced(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.index(i, j);
        self.data[idx] = value;
    }

    /// Maximum absolute element-wise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn max_abs_diff(&self, other: &TracedMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.cols, other.cols, "column count mismatch");
        let mut max = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                max = max.max((self.at(i, j) - other.at(i, j)).abs());
            }
        }
        max
    }

    /// Sum of all elements (untraced); a cheap checksum for tests.
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, VecSink};

    fn space() -> AddressSpace {
        AddressSpace::new()
    }

    #[test]
    fn col_major_addressing() {
        let m = TracedMatrix::zeros(&mut space(), 4, 3, MatrixLayout::ColMajor);
        assert_eq!(m.addr_of(0, 0), m.base());
        assert_eq!(m.addr_of(1, 0), m.base() + 8);
        assert_eq!(m.addr_of(0, 1), m.base() + 8 * 4);
        assert_eq!(m.col_addr(2), m.base() + 8 * 8);
    }

    #[test]
    fn row_major_addressing() {
        let m = TracedMatrix::zeros(&mut space(), 4, 3, MatrixLayout::RowMajor);
        assert_eq!(m.addr_of(0, 1), m.base() + 8);
        assert_eq!(m.addr_of(1, 0), m.base() + 8 * 3);
        assert_eq!(m.row_addr(2), m.base() + 8 * 6);
    }

    #[test]
    fn get_set_roundtrip_and_trace() {
        let mut m = TracedMatrix::zeros(&mut space(), 2, 2, MatrixLayout::ColMajor);
        let mut sink = VecSink::new();
        m.set(1, 1, 2.5, &mut sink);
        assert_eq!(m.get(1, 1, &mut sink), 2.5);
        let trace = sink.accesses();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].kind, AccessKind::Write);
        assert_eq!(trace[1].kind, AccessKind::Read);
        assert_eq!(trace[0].addr, m.addr_of(1, 1));
        assert_eq!(trace[0].size, 8);
    }

    #[test]
    fn get_batch_equals_consecutive_gets() {
        let m = TracedMatrix::from_fn(&mut space(), 4, 4, MatrixLayout::ColMajor, |i, j| {
            (i * 4 + j) as f64
        });
        let at = [(1, 2), (0, 0), (3, 3), (2, 1)];
        let mut batched_sink = VecSink::new();
        let batched = m.get_batch(at, &mut batched_sink);
        let mut single_sink = VecSink::new();
        let singles: Vec<f64> = at
            .iter()
            .map(|&(i, j)| m.get(i, j, &mut single_sink))
            .collect();
        assert_eq!(batched.to_vec(), singles);
        assert_eq!(batched_sink.accesses(), single_sink.accesses());
    }

    #[test]
    fn from_fn_fills_values() {
        let m = TracedMatrix::from_fn(&mut space(), 3, 3, MatrixLayout::RowMajor, |i, j| {
            (i * 10 + j) as f64
        });
        assert_eq!(m.at(2, 1), 21.0);
        assert_eq!(
            m.checksum(),
            (0..3)
                .flat_map(|i| (0..3).map(move |j| (i * 10 + j) as f64))
                .sum()
        );
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let mut s = space();
        let a = TracedMatrix::from_fn(&mut s, 2, 2, MatrixLayout::ColMajor, |_, _| 1.0);
        let mut b = TracedMatrix::from_fn(&mut s, 2, 2, MatrixLayout::ColMajor, |_, _| 1.0);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set_untraced(0, 1, 3.0);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn base_is_line_aligned() {
        let mut s = space();
        s.alloc(13, 1); // misalign the bump pointer
        let m = TracedMatrix::zeros(&mut s, 2, 2, MatrixLayout::ColMajor);
        assert_eq!(m.base().raw() % 128, 0);
    }

    #[test]
    fn distinct_matrices_are_disjoint() {
        let mut s = space();
        let a = TracedMatrix::zeros(&mut s, 8, 8, MatrixLayout::ColMajor);
        let b = TracedMatrix::zeros(&mut s, 8, 8, MatrixLayout::ColMajor);
        assert!(b.base().raw() >= a.base().raw() + a.size_bytes());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics_in_debug() {
        let m = TracedMatrix::zeros(&mut space(), 2, 2, MatrixLayout::ColMajor);
        let _ = m.at(2, 0);
    }
}

//! Memory-reference tracing substrate (the reproduction's stand-in for
//! Pixie binary instrumentation).
//!
//! The ASPLOS'96 paper generated address traces of its benchmark binaries
//! with Pixie and fed them to a modified DineroIII simulator. This crate
//! provides the equivalent information source for pure-Rust workloads:
//!
//! * [`Addr`] / [`Access`] — a virtual address and one memory reference.
//! * [`AddressSpace`] — a bump allocator handing out non-overlapping
//!   virtual regions, so traced data structures live at realistic,
//!   stable addresses (matrix columns really are contiguous, distinct
//!   arrays really are disjoint).
//! * [`TraceSink`] — the consumer interface. A workload runs generically
//!   over `S: TraceSink`; instantiating it with [`NullSink`] gives native
//!   speed, with a cache simulator (see the `cachesim` crate) gives the
//!   paper's trace-driven simulation, with [`VecSink`] gives a recorded
//!   trace for tests.
//! * Traced containers ([`TracedMatrix`], [`TracedBuf`]) that emit one
//!   [`Access`] per element touch, plus analytic instruction accounting
//!   via [`TraceSink::instructions`].
//!
//! # Examples
//!
//! ```
//! use memtrace::{AddressSpace, CountingSink, MatrixLayout, TracedMatrix};
//!
//! let mut space = AddressSpace::new();
//! let mut m = TracedMatrix::zeros(&mut space, 4, 4, MatrixLayout::ColMajor);
//! let mut sink = CountingSink::new();
//! m.set(0, 0, 1.0, &mut sink);
//! let v = m.get(0, 0, &mut sink);
//! assert_eq!(v, 1.0);
//! assert_eq!(sink.reads(), 1);
//! assert_eq!(sink.writes(), 1);
//! ```

mod access;
mod buf;
pub mod compact;
mod footprint;
mod matrix;
mod regions;
mod schedule;
mod sink;
mod space;
mod tracefile;

pub use access::{Access, AccessKind, Addr};
pub use buf::TracedBuf;
pub use compact::{CompactBuf, CompactIter};
pub use footprint::{FootprintSink, PhaseTrace, ThreadFootprint, WORD_BYTES};
pub use matrix::{MatrixLayout, TracedMatrix};
pub use regions::{RegionSink, RegionTraffic};
pub use schedule::{SchedEvent, SchedLogSink, ScheduleLog};
pub use sink::{CountingSink, FnSink, NullSink, TeeSink, TraceSink, VecSink};
pub use space::AddressSpace;
pub use tracefile::{TraceEvent, TraceFileReader, TraceFileWriter, TraceHints, MAX_TRACE_HINTS};

//! Ordered schedule-event streams for happens-before analysis.
//!
//! A [`ScheduleLog`] is the scheduling-plane counterpart of a memory
//! trace: an ordered list of [`SchedEvent`]s naming which *actor* (a
//! sequential execution lane — the serial drain loop, one `ParScheduler`
//! worker, one cache-simulator shard, one serving lane) did what, and
//! where work moved between actors. Emitters:
//!
//! * the serial `BinEngine` drain (fork / drain-unit begin-end /
//!   dispatch, all on actor 0), recorded by [`SchedLogSink`];
//! * `ParScheduler` workers (drain-unit begin/end per worker, plus
//!   [`Steal`](SchedEvent::Steal) provenance when half a deque moves);
//! * the sharded cache simulator ([`Handoff`](SchedEvent::Handoff)
//!   producer → shard and shard → merge);
//! * the serving simulation (grant [`Handoff`](SchedEvent::Handoff)s to
//!   lanes).
//!
//! The log carries *order*, not timing: a happens-before engine (the
//! `analyze` crate) replays it into per-actor vector clocks and decides
//! which thread bodies are ordered. Actor 0 is by convention the
//! serial/coordinating lane; further actors are numbered from 1.

/// One schedule event. `actor`, `thief`, `victim`, `from`, and `to`
/// are actor ids; `fork` is a fork index (program order); `unit` is a
/// drain-unit ordinal (one bin for flat policies, one parent group's
/// sub-bins for nested policies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEvent {
    /// `actor` forked (published) thread `fork`. Establishes the birth
    /// clock a later [`Dispatch`](SchedEvent::Dispatch) joins.
    Fork { actor: u32, fork: u32 },
    /// `actor` started draining unit `unit`.
    DrainBegin { actor: u32, unit: u32 },
    /// `actor` ran the body of thread `fork` (inside the actor's
    /// currently open drain unit, if any). Recording sinks that cannot
    /// resolve fork indices store the dispatch sequence number here;
    /// see [`ScheduleLog::relabel_dispatch_forks`].
    Dispatch { actor: u32, fork: u32 },
    /// `actor` finished draining unit `unit`.
    DrainEnd { actor: u32, unit: u32 },
    /// `thief` moved `units` drain units from `victim`'s deque.
    /// Provenance only: the records' publication edge is the
    /// fork → dispatch join, which the stolen units' dispatches already
    /// carry, so a steal adds no ordering of its own.
    Steal { thief: u32, victim: u32, units: u32 },
    /// `from` handed its work (and its history: a synchronizing edge)
    /// to `to` — a shard queue flush, a merge, a lane grant.
    Handoff { from: u32, to: u32 },
    /// Full join: every actor synchronizes with every other (the final
    /// join of a run).
    Barrier,
}

/// An ordered schedule-event stream over a fixed set of actors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleLog {
    /// Number of actors; actor ids in `events` are `< actors`.
    pub actors: u32,
    /// The events, in observation order.
    pub events: Vec<SchedEvent>,
}

impl ScheduleLog {
    /// Creates an empty log over `actors` actors.
    pub fn new(actors: u32) -> Self {
        ScheduleLog {
            actors,
            events: Vec::new(),
        }
    }

    /// Appends one event.
    #[inline]
    pub fn push(&mut self, event: SchedEvent) {
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Rewrites every [`Dispatch`](SchedEvent::Dispatch) event's `fork`
    /// field — recorded as a dispatch *sequence* number by sinks that
    /// cannot see fork identity — through `fork_of_seq` (element `k` =
    /// fork index of the `k`-th dispatch). Panics if a recorded
    /// sequence number is out of range.
    pub fn relabel_dispatch_forks(&mut self, fork_of_seq: &[usize]) {
        for event in &mut self.events {
            if let SchedEvent::Dispatch { fork, .. } = event {
                *fork = u32::try_from(fork_of_seq[*fork as usize]).expect("fork index fits u32");
            }
        }
    }

    /// FNV-1a digest over the event stream — a cheap fingerprint for
    /// byte-reproducibility checks.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(u64::from(self.actors));
        for &event in &self.events {
            let (tag, a, b, c) = match event {
                SchedEvent::Fork { actor, fork } => (1u64, actor, fork, 0),
                SchedEvent::DrainBegin { actor, unit } => (2, actor, unit, 0),
                SchedEvent::Dispatch { actor, fork } => (3, actor, fork, 0),
                SchedEvent::DrainEnd { actor, unit } => (4, actor, unit, 0),
                SchedEvent::Steal {
                    thief,
                    victim,
                    units,
                } => (5, thief, victim, units),
                SchedEvent::Handoff { from, to } => (6, from, to, 0),
                SchedEvent::Barrier => (7, 0, 0, 0),
            };
            eat(tag);
            eat(u64::from(a));
            eat(u64::from(b));
            eat(u64::from(c));
        }
        h
    }
}

/// A [`TraceSink`](crate::TraceSink) that records the schedule events
/// of one serial scheduler run as a [`ScheduleLog`] on actor 0.
///
/// Memory references and instruction counts are discarded; only the
/// scheduling plane is kept. [`Dispatch`](SchedEvent::Dispatch) events
/// store the dispatch sequence number in the `fork` field (the sink
/// cannot see fork identity); callers that know the dispatch
/// permutation resolve it with
/// [`ScheduleLog::relabel_dispatch_forks`].
///
/// # Examples
///
/// ```
/// use memtrace::{Addr, SchedEvent, SchedLogSink, TraceSink};
///
/// let mut sink = SchedLogSink::new();
/// sink.thread_hints(&[Addr::new(0x100)]); // fork 0
/// sink.drain_begin(0);
/// sink.thread_begin(0);
/// sink.drain_end(0);
/// sink.run_end();
/// let log = sink.into_log();
/// assert_eq!(log.events[0], SchedEvent::Fork { actor: 0, fork: 0 });
/// assert_eq!(log.events.last(), Some(&SchedEvent::Barrier));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SchedLogSink {
    log: ScheduleLog,
    forks: u32,
}

impl SchedLogSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        SchedLogSink {
            log: ScheduleLog::new(1),
            forks: 0,
        }
    }

    /// The log recorded so far.
    pub fn log(&self) -> &ScheduleLog {
        &self.log
    }

    /// Consumes the sink, returning the recorded log.
    pub fn into_log(self) -> ScheduleLog {
        self.log
    }
}

impl crate::TraceSink for SchedLogSink {
    #[inline]
    fn access(&mut self, _access: crate::Access) {}

    #[inline]
    fn instructions(&mut self, _count: u64) {}

    fn thread_hints(&mut self, _hints: &[crate::Addr]) {
        let fork = self.forks;
        self.forks += 1;
        self.log.push(SchedEvent::Fork { actor: 0, fork });
    }

    fn thread_begin(&mut self, seq: u64) {
        self.log.push(SchedEvent::Dispatch {
            actor: 0,
            fork: u32::try_from(seq).expect("dispatch sequence fits u32"),
        });
    }

    fn drain_begin(&mut self, unit: u64) {
        self.log.push(SchedEvent::DrainBegin {
            actor: 0,
            unit: u32::try_from(unit).expect("drain unit fits u32"),
        });
    }

    fn drain_end(&mut self, unit: u64) {
        self.log.push(SchedEvent::DrainEnd {
            actor: 0,
            unit: u32::try_from(unit).expect("drain unit fits u32"),
        });
    }

    fn run_end(&mut self) {
        self.log.push(SchedEvent::Barrier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, TraceSink};

    #[test]
    fn sink_records_the_full_event_vocabulary_in_order() {
        let mut sink = SchedLogSink::new();
        sink.thread_hints(&[Addr::new(0x100)]);
        sink.thread_hints(&[]);
        sink.drain_begin(0);
        sink.thread_begin(0);
        sink.thread_begin(1);
        sink.drain_end(0);
        sink.run_end();
        let log = sink.into_log();
        assert_eq!(log.actors, 1);
        assert_eq!(
            log.events,
            vec![
                SchedEvent::Fork { actor: 0, fork: 0 },
                SchedEvent::Fork { actor: 0, fork: 1 },
                SchedEvent::DrainBegin { actor: 0, unit: 0 },
                SchedEvent::Dispatch { actor: 0, fork: 0 },
                SchedEvent::Dispatch { actor: 0, fork: 1 },
                SchedEvent::DrainEnd { actor: 0, unit: 0 },
                SchedEvent::Barrier,
            ]
        );
    }

    #[test]
    fn relabel_maps_dispatch_sequence_to_fork_index() {
        let mut log = ScheduleLog::new(1);
        log.push(SchedEvent::Dispatch { actor: 0, fork: 0 });
        log.push(SchedEvent::Dispatch { actor: 0, fork: 1 });
        log.relabel_dispatch_forks(&[1, 0]);
        assert_eq!(
            log.events,
            vec![
                SchedEvent::Dispatch { actor: 0, fork: 1 },
                SchedEvent::Dispatch { actor: 0, fork: 0 },
            ]
        );
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut a = ScheduleLog::new(2);
        a.push(SchedEvent::Handoff { from: 0, to: 1 });
        a.push(SchedEvent::Barrier);
        let mut b = ScheduleLog::new(2);
        b.push(SchedEvent::Barrier);
        b.push(SchedEvent::Handoff { from: 0, to: 1 });
        assert_eq!(a.digest(), a.clone().digest());
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), ScheduleLog::new(2).digest());
    }
}

//! Virtual address-space allocation for traced data structures.

use crate::Addr;

/// A bump allocator over a synthetic virtual address space.
///
/// Traced containers obtain their base addresses here, which guarantees
/// (a) distinct containers occupy disjoint address ranges, and (b) the
/// addresses used as scheduling hints are stable and reproducible across
/// runs — unlike real heap addresses under ASLR. The base address and
/// inter-region padding mimic a typical Unix data segment so that cache
/// index bits are realistic.
///
/// # Examples
///
/// ```
/// use memtrace::AddressSpace;
///
/// let mut space = AddressSpace::new();
/// let a = space.alloc(1024, 64);
/// let b = space.alloc(1024, 64);
/// assert!(b.raw() >= a.raw() + 1024);
/// assert_eq!(a.raw() % 64, 0);
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: Addr,
    regions: Vec<Region>,
}

/// One named allocation inside an [`AddressSpace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Debug label (empty for anonymous allocations).
    pub name: String,
    /// First byte of the region.
    pub base: Addr,
    /// Region length in bytes.
    pub len: u64,
}

impl Region {
    /// Returns `true` if `addr` falls inside this region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr.raw() < self.base.raw() + self.len
    }
}

/// Start of the synthetic data segment (matches a classic Unix layout).
const DATA_SEGMENT_BASE: u64 = 0x1000_0000;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            next: Addr::new(DATA_SEGMENT_BASE),
            regions: Vec::new(),
        }
    }

    /// Allocates `len` bytes aligned to `align` and returns the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> Addr {
        self.alloc_named("", len, align)
    }

    /// Allocates like [`alloc`](Self::alloc) but records `name` for
    /// region lookup and debugging.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_named(&mut self, name: &str, len: u64, align: u64) -> Addr {
        let base = self.next.align_up(align);
        self.next = base + len.max(1);
        self.regions.push(Region {
            name: name.to_owned(),
            base,
            len,
        });
        base
    }

    /// All regions allocated so far, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Finds the region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Total bytes spanned from the segment base to the allocation point
    /// (including alignment padding).
    pub fn footprint(&self) -> u64 {
        self.next - Addr::new(DATA_SEGMENT_BASE)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc(100, 8);
        let b = space.alloc(100, 8);
        let c = space.alloc(100, 128);
        assert!(b - a >= 100);
        assert!(c - b >= 100);
        assert_eq!(a.raw() % 8, 0);
        assert_eq!(c.raw() % 128, 0);
    }

    #[test]
    fn named_regions_are_recorded() {
        let mut space = AddressSpace::new();
        let a = space.alloc_named("matrix-a", 800, 64);
        let _b = space.alloc_named("matrix-b", 800, 64);
        assert_eq!(space.regions().len(), 2);
        assert_eq!(space.region_of(a).unwrap().name, "matrix-a");
        assert_eq!(space.region_of(a + 799).unwrap().name, "matrix-a");
        assert!(space
            .region_of(a + 800)
            .is_none_or(|r| r.name != "matrix-a"));
    }

    #[test]
    fn region_of_miss_returns_none() {
        let mut space = AddressSpace::new();
        let a = space.alloc(16, 16);
        assert!(space.region_of(Addr::new(a.raw() - 1)).is_none());
    }

    #[test]
    fn footprint_accumulates() {
        let mut space = AddressSpace::new();
        assert_eq!(space.footprint(), 0);
        space.alloc(64, 64);
        assert!(space.footprint() >= 64);
    }

    #[test]
    fn zero_length_allocations_still_advance() {
        let mut space = AddressSpace::new();
        let a = space.alloc(0, 8);
        let b = space.alloc(0, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn base_is_reproducible() {
        let a1 = AddressSpace::new().alloc(8, 8);
        let a2 = AddressSpace::new().alloc(8, 8);
        assert_eq!(a1, a2);
    }
}

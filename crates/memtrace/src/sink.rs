//! Trace consumers.

use crate::{Access, Addr};

/// A consumer of memory-reference traces.
///
/// Workloads are written once, generically over `S: TraceSink`, and the
/// sink decides what tracing costs:
///
/// * [`NullSink`] — everything inlines to nothing; the workload runs at
///   native speed (used for wall-clock Criterion benches).
/// * `cachesim::SimSink` — feeds an online cache-hierarchy simulation
///   (the paper's Pixie → DineroIII pipeline, without the intermediate
///   trace file).
/// * [`VecSink`] — records the trace for inspection in tests.
/// * [`CountingSink`] — counts references only.
///
/// Implementations also receive *instruction counts* via
/// [`instructions`](TraceSink::instructions): workloads account the
/// instructions of each inner-loop iteration analytically (the paper
/// reports these counts per version in §4.2), which replaces Pixie's
/// I-fetch stream.
pub trait TraceSink {
    /// Consumes one memory reference.
    fn access(&mut self, access: Access);

    /// Consumes a run of memory references in program order.
    ///
    /// Semantically identical to calling [`access`](TraceSink::access)
    /// once per element — the default does exactly that — but sinks
    /// with per-call overhead (an online cache simulation, a trace-file
    /// writer) can override it to amortize dispatch across the batch.
    /// Traced containers emit batches from their inner loops, so the
    /// hot simulation path sees slices instead of single references.
    ///
    /// Overrides must preserve exact equivalence: a batched delivery
    /// and an element-wise delivery of the same stream must leave the
    /// sink in the same state (see `tests/fastpath_equivalence.rs`).
    #[inline]
    fn access_batch(&mut self, accesses: &[Access]) {
        for &access in accesses {
            self.access(access);
        }
    }

    /// Accounts `count` executed instructions.
    fn instructions(&mut self, count: u64);

    /// Observes the hint addresses of a newly forked thread, in fork
    /// order. Schedulers emit one event per fork (possibly with an
    /// empty slice for unhinted threads); most sinks ignore it — the
    /// default is a no-op — but schedule-analysis sinks use the fork
    /// stream to rebuild the thread/hint graph.
    #[inline]
    fn thread_hints(&mut self, hints: &[Addr]) {
        let _ = hints;
    }

    /// Marks the dispatch of the `seq`-th thread (0-based) of the
    /// current scheduler run: every access that follows, up to the next
    /// `thread_begin` or [`run_end`](TraceSink::run_end), belongs to
    /// that thread's body. Default: no-op.
    #[inline]
    fn thread_begin(&mut self, seq: u64) {
        let _ = seq;
    }

    /// Marks the end of a scheduler run (one *phase* of forked
    /// threads); accesses after it are ambient until the next run
    /// starts. Default: no-op.
    #[inline]
    fn run_end(&mut self) {}

    /// Marks the start of drain unit `unit` (0-based within the current
    /// run): the contiguous block of dispatches a scheduler hands out as
    /// one indivisible batch — one bin for flat policies, one parent
    /// group's sub-bins for nested policies. Work stealing moves whole
    /// drain units between workers, never fractions of one, which is
    /// what makes unit granularity sound for happens-before analysis.
    /// Default: no-op.
    #[inline]
    fn drain_begin(&mut self, unit: u64) {
        let _ = unit;
    }

    /// Marks the end of drain unit `unit`. Default: no-op.
    #[inline]
    fn drain_end(&mut self, unit: u64) {
        let _ = unit;
    }

    /// Convenience: consumes a read of `size` bytes at `addr`.
    #[inline]
    fn read(&mut self, addr: Addr, size: u32) {
        self.access(Access::read(addr, size));
    }

    /// Convenience: consumes a write of `size` bytes at `addr`.
    #[inline]
    fn write(&mut self, addr: Addr, size: u32) {
        self.access(Access::write(addr, size));
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access);
    }

    #[inline]
    fn access_batch(&mut self, accesses: &[Access]) {
        (**self).access_batch(accesses);
    }

    #[inline]
    fn instructions(&mut self, count: u64) {
        (**self).instructions(count);
    }

    #[inline]
    fn thread_hints(&mut self, hints: &[Addr]) {
        (**self).thread_hints(hints);
    }

    #[inline]
    fn thread_begin(&mut self, seq: u64) {
        (**self).thread_begin(seq);
    }

    #[inline]
    fn run_end(&mut self) {
        (**self).run_end();
    }

    #[inline]
    fn drain_begin(&mut self, unit: u64) {
        (**self).drain_begin(unit);
    }

    #[inline]
    fn drain_end(&mut self, unit: u64) {
        (**self).drain_end(unit);
    }
}

/// A sink that discards everything; traced code runs at native speed.
///
/// # Examples
///
/// ```
/// use memtrace::{Access, Addr, NullSink, TraceSink};
///
/// let mut sink = NullSink;
/// sink.access(Access::read(Addr::new(0x10), 8));
/// sink.instructions(100);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl NullSink {
    /// Creates a new null sink.
    pub fn new() -> Self {
        NullSink
    }
}

impl TraceSink for NullSink {
    #[inline]
    fn access(&mut self, _access: Access) {}

    #[inline]
    fn access_batch(&mut self, _accesses: &[Access]) {}

    #[inline]
    fn instructions(&mut self, _count: u64) {}
}

/// A sink that counts references and instructions without storing them.
///
/// # Examples
///
/// ```
/// use memtrace::{Access, Addr, CountingSink, TraceSink};
///
/// let mut sink = CountingSink::new();
/// sink.read(Addr::new(0), 8);
/// sink.write(Addr::new(8), 8);
/// sink.instructions(10);
/// assert_eq!(sink.reads(), 1);
/// assert_eq!(sink.writes(), 1);
/// assert_eq!(sink.data_references(), 2);
/// assert_eq!(sink.instructions_executed(), 10);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    reads: u64,
    writes: u64,
    bytes: u64,
    instructions: u64,
}

impl CountingSink {
    /// Creates a sink with all counters at zero.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Number of read references seen.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write references seen.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total references seen (reads + writes).
    pub fn data_references(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes touched.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total instructions accounted.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = CountingSink::default();
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn access(&mut self, access: Access) {
        match access.kind {
            crate::AccessKind::Read => self.reads += 1,
            crate::AccessKind::Write => self.writes += 1,
        }
        self.bytes += u64::from(access.size);
    }

    #[inline]
    fn access_batch(&mut self, accesses: &[Access]) {
        for access in accesses {
            match access.kind {
                crate::AccessKind::Read => self.reads += 1,
                crate::AccessKind::Write => self.writes += 1,
            }
            self.bytes += u64::from(access.size);
        }
    }

    #[inline]
    fn instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

/// A sink that records the full trace in memory.
///
/// Only suitable for small traces (tests, debugging); the paper-scale
/// experiments stream into the simulator instead.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    accesses: Vec<Access>,
    instructions: u64,
}

impl VecSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The recorded references, in program order.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Total instructions accounted.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions
    }

    /// Consumes the sink, returning the recorded trace.
    pub fn into_accesses(self) -> Vec<Access> {
        self.accesses
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.accesses.push(access);
    }

    #[inline]
    fn access_batch(&mut self, accesses: &[Access]) {
        self.accesses.extend_from_slice(accesses);
    }

    #[inline]
    fn instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

/// A sink that forwards every event to two underlying sinks.
///
/// # Examples
///
/// ```
/// use memtrace::{Addr, CountingSink, TeeSink, TraceSink, VecSink};
///
/// let mut tee = TeeSink::new(CountingSink::new(), VecSink::new());
/// tee.read(Addr::new(0), 8);
/// assert_eq!(tee.first().reads(), 1);
/// assert_eq!(tee.second().accesses().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// The first underlying sink.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second underlying sink.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Consumes the tee, returning both sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.first.access(access);
        self.second.access(access);
    }

    #[inline]
    fn access_batch(&mut self, accesses: &[Access]) {
        self.first.access_batch(accesses);
        self.second.access_batch(accesses);
    }

    #[inline]
    fn instructions(&mut self, count: u64) {
        self.first.instructions(count);
        self.second.instructions(count);
    }

    #[inline]
    fn thread_hints(&mut self, hints: &[Addr]) {
        self.first.thread_hints(hints);
        self.second.thread_hints(hints);
    }

    #[inline]
    fn thread_begin(&mut self, seq: u64) {
        self.first.thread_begin(seq);
        self.second.thread_begin(seq);
    }

    #[inline]
    fn run_end(&mut self) {
        self.first.run_end();
        self.second.run_end();
    }

    #[inline]
    fn drain_begin(&mut self, unit: u64) {
        self.first.drain_begin(unit);
        self.second.drain_begin(unit);
    }

    #[inline]
    fn drain_end(&mut self, unit: u64) {
        self.first.drain_end(unit);
        self.second.drain_end(unit);
    }
}

/// A sink that invokes a closure on every reference (instruction counts
/// are tallied but not forwarded).
///
/// Handy in tests for asserting properties of a trace without storing it.
pub struct FnSink<F> {
    callback: F,
    instructions: u64,
}

impl<F: FnMut(Access)> FnSink<F> {
    /// Creates a sink calling `callback` for every access.
    pub fn new(callback: F) -> Self {
        FnSink {
            callback,
            instructions: 0,
        }
    }

    /// Total instructions accounted.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions
    }
}

impl<F> std::fmt::Debug for FnSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSink")
            .field("instructions", &self.instructions)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(Access)> TraceSink for FnSink<F> {
    #[inline]
    fn access(&mut self, access: Access) {
        (self.callback)(access);
    }

    #[inline]
    fn instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        sink.read(Addr::new(0), 8);
        sink.read(Addr::new(8), 4);
        sink.write(Addr::new(16), 8);
        sink.instructions(3);
        sink.instructions(4);
        assert_eq!(sink.reads(), 2);
        assert_eq!(sink.writes(), 1);
        assert_eq!(sink.data_references(), 3);
        assert_eq!(sink.bytes(), 20);
        assert_eq!(sink.instructions_executed(), 7);
        sink.reset();
        assert_eq!(sink.data_references(), 0);
        assert_eq!(sink.instructions_executed(), 0);
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::new();
        sink.read(Addr::new(0), 8);
        sink.write(Addr::new(8), 8);
        let trace = sink.into_accesses();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].kind, AccessKind::Read);
        assert_eq!(trace[1].kind, AccessKind::Write);
        assert_eq!(trace[1].addr, Addr::new(8));
    }

    #[test]
    fn tee_sink_forwards_to_both() {
        let mut tee = TeeSink::new(CountingSink::new(), CountingSink::new());
        tee.read(Addr::new(0), 8);
        tee.instructions(5);
        let (a, b) = tee.into_inner();
        assert_eq!(a.reads(), 1);
        assert_eq!(b.reads(), 1);
        assert_eq!(a.instructions_executed(), 5);
        assert_eq!(b.instructions_executed(), 5);
    }

    #[test]
    fn fn_sink_invokes_callback() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink::new(|a| seen.push(a));
            sink.read(Addr::new(4), 4);
            sink.instructions(2);
            assert_eq!(sink.instructions_executed(), 2);
        }
        assert_eq!(seen, vec![Access::read(Addr::new(4), 4)]);
    }

    #[test]
    fn batched_delivery_equals_element_wise() {
        let batch = [
            Access::read(Addr::new(0), 8),
            Access::write(Addr::new(8), 4),
            Access::read(Addr::new(64), 8),
        ];
        let mut one_by_one = CountingSink::new();
        for &a in &batch {
            one_by_one.access(a);
        }
        let mut batched = CountingSink::new();
        batched.access_batch(&batch);
        assert_eq!(batched, one_by_one);

        let mut vec_batched = VecSink::new();
        vec_batched.access_batch(&batch);
        assert_eq!(vec_batched.accesses(), &batch);

        let mut tee = TeeSink::new(CountingSink::new(), VecSink::new());
        tee.access_batch(&batch);
        assert_eq!(tee.first().data_references(), 3);
        assert_eq!(tee.second().accesses(), &batch);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn takes_sink<S: TraceSink>(mut s: S) {
            s.read(Addr::new(0), 8);
        }
        let mut counting = CountingSink::new();
        takes_sink(&mut counting);
        takes_sink(&mut counting);
        assert_eq!(counting.reads(), 2);
    }
}

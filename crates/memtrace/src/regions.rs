//! Per-region traffic attribution.

use crate::{Access, AccessKind, AddressSpace, TraceSink};

/// Reference counts for one named region.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionTraffic {
    /// Region label (from [`AddressSpace::alloc_named`]).
    pub name: String,
    /// Read references landing in the region.
    pub reads: u64,
    /// Write references landing in the region.
    pub writes: u64,
}

impl RegionTraffic {
    /// Total references.
    pub fn references(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A [`TraceSink`] that attributes every reference to the address-space
/// region containing it — a debugging/analysis aid with no paper
/// counterpart (Pixie traces were attributed by hand).
///
/// # Examples
///
/// ```
/// use memtrace::{AddressSpace, MatrixLayout, RegionSink, TracedMatrix};
///
/// let mut space = AddressSpace::new();
/// let a = space.alloc_named("a", 1024, 64);
/// let _b = space.alloc_named("b", 1024, 64);
/// let mut sink = RegionSink::new(&space);
/// use memtrace::TraceSink;
/// sink.read(a, 8);
/// sink.read(a + 512, 8);
/// let traffic = sink.finish();
/// assert_eq!(traffic[0].name, "a");
/// assert_eq!(traffic[0].reads, 2);
/// assert_eq!(traffic[1].references(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct RegionSink {
    /// (base, end) per region, sorted by base, parallel to `traffic`.
    bounds: Vec<(u64, u64)>,
    traffic: Vec<RegionTraffic>,
    /// References outside every region.
    unattributed: u64,
    instructions: u64,
}

impl RegionSink {
    /// Snapshots the regions of `space`; later allocations are not
    /// tracked.
    pub fn new(space: &AddressSpace) -> Self {
        let mut indexed: Vec<(u64, u64, String)> = space
            .regions()
            .iter()
            .map(|r| (r.base.raw(), r.base.raw() + r.len, r.name.clone()))
            .collect();
        indexed.sort_by_key(|&(base, _, _)| base);
        RegionSink {
            bounds: indexed.iter().map(|&(b, e, _)| (b, e)).collect(),
            traffic: indexed
                .into_iter()
                .map(|(_, _, name)| RegionTraffic {
                    name,
                    reads: 0,
                    writes: 0,
                })
                .collect(),
            unattributed: 0,
            instructions: 0,
        }
    }

    /// References that fell outside every tracked region.
    pub fn unattributed(&self) -> u64 {
        self.unattributed
    }

    /// Instructions accounted.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions
    }

    /// Consumes the sink, returning per-region traffic in base-address
    /// order.
    pub fn finish(self) -> Vec<RegionTraffic> {
        self.traffic
    }

    fn region_index(&self, addr: u64) -> Option<usize> {
        let idx = self.bounds.partition_point(|&(base, _)| base <= addr);
        if idx == 0 {
            return None;
        }
        let (base, end) = self.bounds[idx - 1];
        (addr >= base && addr < end).then_some(idx - 1)
    }
}

impl TraceSink for RegionSink {
    fn access(&mut self, access: Access) {
        match self.region_index(access.addr.raw()) {
            Some(idx) => match access.kind {
                AccessKind::Read => self.traffic[idx].reads += 1,
                AccessKind::Write => self.traffic[idx].writes += 1,
            },
            None => self.unattributed += 1,
        }
    }

    fn instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn attributes_to_the_right_region() {
        let mut space = AddressSpace::new();
        let a = space.alloc_named("alpha", 100, 8);
        let b = space.alloc_named("beta", 100, 8);
        let mut sink = RegionSink::new(&space);
        sink.read(a, 8);
        sink.write(a + 99, 1);
        sink.read(b + 50, 8);
        sink.read(Addr::new(1), 8); // before everything
        sink.instructions(7);
        assert_eq!(sink.unattributed(), 1);
        assert_eq!(sink.instructions_executed(), 7);
        let traffic = sink.finish();
        assert_eq!(traffic[0].name, "alpha");
        assert_eq!(traffic[0].reads, 1);
        assert_eq!(traffic[0].writes, 1);
        assert_eq!(traffic[1].name, "beta");
        assert_eq!(traffic[1].reads, 1);
    }

    #[test]
    fn boundary_addresses_attribute_by_first_byte() {
        let mut space = AddressSpace::new();
        let a = space.alloc_named("a", 64, 64);
        let b = space.alloc_named("b", 64, 64);
        let mut sink = RegionSink::new(&space);
        // The access starts on a's last byte (spills into b, attributed
        // to a by its first byte).
        sink.read(a + 63, 8);
        // Exactly at b's base.
        sink.read(b, 8);
        let traffic = sink.finish();
        assert_eq!(traffic[0].reads, 1);
        assert_eq!(traffic[1].reads, 1);
    }

    #[test]
    fn matmul_traffic_attribution() {
        use crate::{MatrixLayout, TracedMatrix};
        let mut space = AddressSpace::new();
        let a = TracedMatrix::zeros(&mut space, 4, 4, MatrixLayout::ColMajor);
        let mut c = TracedMatrix::zeros(&mut space, 4, 4, MatrixLayout::ColMajor);
        let mut sink = RegionSink::new(&space);
        for i in 0..4 {
            for j in 0..4 {
                let v = a.get(i, j, &mut sink);
                c.set(i, j, v, &mut sink);
            }
        }
        let traffic = sink.finish();
        assert_eq!(traffic[0].reads, 16);
        assert_eq!(traffic[0].writes, 0);
        assert_eq!(traffic[1].writes, 16);
        assert_eq!(sinkless_total(&traffic), 32);
    }

    fn sinkless_total(traffic: &[RegionTraffic]) -> u64 {
        traffic.iter().map(RegionTraffic::references).sum()
    }

    #[test]
    fn empty_space_attributes_nothing() {
        let space = AddressSpace::new();
        let mut sink = RegionSink::new(&space);
        sink.read(Addr::new(12345), 8);
        assert_eq!(sink.unattributed(), 1);
        assert!(sink.finish().is_empty());
    }
}

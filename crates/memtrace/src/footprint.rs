//! Per-thread footprint accumulation for schedule analysis.
//!
//! [`FootprintSink`] consumes the schedule events a tracing scheduler
//! emits ([`TraceSink::thread_hints`] at fork, [`TraceSink::thread_begin`]
//! at dispatch, [`TraceSink::run_end`] when a run drains) and attributes
//! every memory reference in between to the thread that made it. The
//! result is one [`PhaseTrace`] per scheduler run: the fork-ordered hint
//! lists plus the dispatch-ordered read/write footprints, the raw
//! material for conflict, hint-accuracy, bin-overflow, and false-sharing
//! analysis (the `analyze` crate's `schedlint`).
//!
//! Footprints are sets of *word granules* — 8-byte-aligned units, the
//! element size of every traced structure in this reproduction — so
//! overlap at word granularity means a true data dependency, while
//! distinct words on one cache line mean false sharing. Cache-line sets
//! at any line size derive from the word sets via
//! [`ThreadFootprint::lines`].

use std::collections::BTreeSet;
use std::mem;

use crate::{Access, AccessKind, Addr, TraceSink};

/// The footprint granule: 8-byte words, the traced element size.
pub const WORD_BYTES: u64 = 8;

/// The read and write word-sets of one thread (or of ambient code).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadFootprint {
    reads: BTreeSet<u64>,
    writes: BTreeSet<u64>,
}

impl ThreadFootprint {
    /// Creates an empty footprint.
    pub fn new() -> Self {
        ThreadFootprint::default()
    }

    /// Adds one reference, splitting it into word granules.
    pub fn record(&mut self, access: Access) {
        if access.size == 0 {
            return;
        }
        let first = access.addr.raw() / WORD_BYTES;
        let last = (access.addr.raw() + u64::from(access.size) - 1) / WORD_BYTES;
        let set = match access.kind {
            AccessKind::Read => &mut self.reads,
            AccessKind::Write => &mut self.writes,
        };
        for word in first..=last {
            set.insert(word);
        }
    }

    /// Word granules read (indices of 8-byte units, i.e. `addr / 8`).
    pub fn read_words(&self) -> &BTreeSet<u64> {
        &self.reads
    }

    /// Word granules written.
    pub fn write_words(&self) -> &BTreeSet<u64> {
        &self.writes
    }

    /// All word granules touched (reads ∪ writes).
    pub fn words(&self) -> BTreeSet<u64> {
        self.reads.union(&self.writes).copied().collect()
    }

    /// Cache-line indices touched, for `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn lines(&self, line_size: u64) -> BTreeSet<u64> {
        assert!(line_size.is_power_of_two());
        self.reads
            .iter()
            .chain(self.writes.iter())
            .map(|&w| w * WORD_BYTES / line_size)
            .collect()
    }

    /// `true` if no reference has been recorded.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// One scheduler run's worth of schedule data: hints in *fork* order,
/// footprints in *dispatch* order. The two indexings generally differ —
/// relating them requires replaying the scheduling policy over the
/// hints, which is exactly what the analyzer does.
#[derive(Clone, Debug, Default)]
pub struct PhaseTrace {
    /// Hint addresses per forked thread, in fork order (possibly empty
    /// per thread for unhinted forks).
    pub hints: Vec<Vec<Addr>>,
    /// Per-thread footprints, in dispatch (execution) order.
    pub dispatches: Vec<ThreadFootprint>,
}

/// A [`TraceSink`] that builds per-phase, per-thread footprints from a
/// traced scheduler run.
///
/// References arriving between [`thread_begin`](TraceSink::thread_begin)
/// events belong to the thread that began; references outside any run
/// accumulate in a single *ambient* footprint. Addresses at or above an
/// optional threshold are dropped — schedulers synthesize their own
/// bookkeeping traffic at a reserved high base (the package trace), and
/// analysis usually wants application data only.
///
/// # Examples
///
/// ```
/// use memtrace::{Addr, FootprintSink, TraceSink};
///
/// let mut sink = FootprintSink::new();
/// sink.thread_hints(&[Addr::new(0x100)]); // fork 0
/// sink.thread_hints(&[Addr::new(0x200)]); // fork 1
/// sink.thread_begin(0);
/// sink.write(Addr::new(0x208), 8); // belongs to the first dispatch
/// sink.thread_begin(1);
/// sink.read(Addr::new(0x100), 8);
/// sink.run_end();
/// let phases = sink.into_phases();
/// assert_eq!(phases.len(), 1);
/// assert_eq!(phases[0].hints.len(), 2);
/// assert_eq!(phases[0].dispatches.len(), 2);
/// assert!(phases[0].dispatches[0].write_words().contains(&(0x208 / 8)));
/// ```
#[derive(Debug, Default)]
pub struct FootprintSink {
    ignore_at_or_above: Option<u64>,
    pending_hints: Vec<Vec<Addr>>,
    dispatches: Vec<ThreadFootprint>,
    in_run: bool,
    ambient: ThreadFootprint,
    phases: Vec<PhaseTrace>,
}

impl FootprintSink {
    /// Creates a sink recording every address.
    pub fn new() -> Self {
        FootprintSink::default()
    }

    /// Creates a sink that drops references at or above `limit` —
    /// typically the scheduler's package-trace base, so synthetic
    /// bookkeeping traffic stays out of the application footprints.
    pub fn ignoring_at_or_above(limit: Addr) -> Self {
        FootprintSink {
            ignore_at_or_above: Some(limit.raw()),
            ..FootprintSink::default()
        }
    }

    /// The completed phases so far.
    pub fn phases(&self) -> &[PhaseTrace] {
        &self.phases
    }

    /// References made outside any scheduler run (setup, fork loops,
    /// post-run reductions).
    pub fn ambient(&self) -> &ThreadFootprint {
        &self.ambient
    }

    /// Consumes the sink, returning all phases; a run still open (or
    /// forks never run) is closed into a final phase.
    pub fn into_phases(mut self) -> Vec<PhaseTrace> {
        if self.in_run || !self.pending_hints.is_empty() || !self.dispatches.is_empty() {
            self.close_phase();
        }
        self.phases
    }

    fn close_phase(&mut self) {
        let hints = mem::take(&mut self.pending_hints);
        let dispatches = mem::take(&mut self.dispatches);
        self.in_run = false;
        if !hints.is_empty() || !dispatches.is_empty() {
            self.phases.push(PhaseTrace { hints, dispatches });
        }
    }
}

impl TraceSink for FootprintSink {
    fn access(&mut self, access: Access) {
        if let Some(limit) = self.ignore_at_or_above {
            if access.addr.raw() >= limit {
                return;
            }
        }
        if self.in_run {
            if let Some(current) = self.dispatches.last_mut() {
                current.record(access);
                return;
            }
        }
        self.ambient.record(access);
    }

    fn instructions(&mut self, _count: u64) {}

    fn thread_hints(&mut self, hints: &[Addr]) {
        self.pending_hints.push(hints.to_vec());
    }

    fn thread_begin(&mut self, seq: u64) {
        if seq == 0 && self.in_run {
            // A new run started while the previous one never announced
            // its end (e.g. an untraced drain): close it defensively.
            self.close_phase();
        }
        self.in_run = true;
        debug_assert_eq!(self.dispatches.len() as u64, seq, "dispatch sequence gap");
        self.dispatches.push(ThreadFootprint::new());
    }

    fn run_end(&mut self) {
        self.close_phase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_split_into_word_granules() {
        let mut fp = ThreadFootprint::new();
        fp.record(Access::read(Addr::new(0x100), 8));
        fp.record(Access::read(Addr::new(0x104), 8)); // straddles two words
        fp.record(Access::write(Addr::new(0x200), 4));
        assert_eq!(
            fp.read_words().iter().copied().collect::<Vec<_>>(),
            vec![0x100 / 8, 0x108 / 8]
        );
        assert_eq!(
            fp.write_words().iter().copied().collect::<Vec<_>>(),
            vec![0x200 / 8]
        );
        assert_eq!(fp.words().len(), 3);
    }

    #[test]
    fn lines_derive_from_words() {
        let mut fp = ThreadFootprint::new();
        fp.record(Access::read(Addr::new(0), 8));
        fp.record(Access::read(Addr::new(120), 8));
        fp.record(Access::write(Addr::new(128), 8));
        let lines = fp.lines(128);
        assert_eq!(lines.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn phases_split_on_run_end() {
        let mut sink = FootprintSink::new();
        // Phase 1: two forks, dispatched in reverse order.
        sink.read(Addr::new(0x8000), 8); // ambient setup
        sink.thread_hints(&[Addr::new(0x100)]);
        sink.thread_hints(&[Addr::new(0x200), Addr::new(0x300)]);
        sink.thread_begin(0);
        sink.write(Addr::new(0x200), 8);
        sink.thread_begin(1);
        sink.write(Addr::new(0x100), 8);
        sink.run_end();
        // Phase 2: one fork.
        sink.thread_hints(&[]);
        sink.thread_begin(0);
        sink.read(Addr::new(0x400), 8);
        sink.run_end();
        sink.instructions(10); // ignored
        sink.write(Addr::new(0x8008), 8); // ambient again

        assert_eq!(sink.phases().len(), 2);
        assert!(sink.ambient().write_words().contains(&(0x8008 / 8)));
        let phases = sink.into_phases();
        assert_eq!(phases[0].hints.len(), 2);
        assert_eq!(phases[0].hints[1], vec![Addr::new(0x200), Addr::new(0x300)]);
        assert_eq!(phases[0].dispatches.len(), 2);
        assert!(phases[0].dispatches[0].write_words().contains(&(0x200 / 8)));
        assert!(phases[0].dispatches[1].write_words().contains(&(0x100 / 8)));
        assert_eq!(phases[1].hints, vec![Vec::<Addr>::new()]);
        assert_eq!(phases[1].dispatches.len(), 1);
    }

    #[test]
    fn high_addresses_are_ignored_when_requested() {
        let mut sink = FootprintSink::ignoring_at_or_above(Addr::new(0x1000));
        sink.thread_hints(&[Addr::new(0x10)]);
        sink.thread_begin(0);
        sink.read(Addr::new(0x10), 8);
        sink.read(Addr::new(0x1000), 8); // dropped
        sink.run_end();
        let phases = sink.into_phases();
        assert_eq!(phases[0].dispatches[0].read_words().len(), 1);
    }

    #[test]
    fn dangling_run_is_closed_by_into_phases() {
        let mut sink = FootprintSink::new();
        sink.thread_hints(&[Addr::new(0x10)]);
        sink.thread_begin(0);
        sink.write(Addr::new(0x10), 8);
        let phases = sink.into_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].dispatches.len(), 1);
    }

    #[test]
    fn empty_sink_yields_no_phases() {
        assert!(FootprintSink::new().into_phases().is_empty());
    }
}

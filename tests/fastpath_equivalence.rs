//! Differential testing of the fast simulation paths: with the fast
//! lookups enabled (same-line rehits, MRU-first way probes, classifier
//! shortcut, line-index hashing) every [`SimReport`] field must be
//! *bit-identical* to the exhaustive reference path, on every workload,
//! with and without an MMU attached, and regardless of how accesses are
//! batched on their way into the sink. The reports are a pure function
//! of the reference stream; the fast paths may only change how quickly
//! they are computed.

use thread_locality::apps::{matmul, nbody, pde, sor};
use thread_locality::sim::{
    CacheConfig, Hierarchy, HierarchyConfig, MachineModel, Mmu, PageMapper, PagePolicy, SimReport,
    SimSink,
};
use thread_locality::trace::{AddressSpace, TraceSink, VecSink};

/// A machine small enough that the toy working sets below still
/// overflow the caches (otherwise the fast paths would never face an
/// eviction).
fn machine() -> MachineModel {
    MachineModel::r8000().scaled_split(1.0 / 16.0, 1.0 / 64.0)
}

/// Runs `workload` twice — fast paths on and off — and returns both
/// reports.
fn both_ways(
    machine: &MachineModel,
    mut workload: impl FnMut(&mut SimSink),
) -> (SimReport, SimReport) {
    let run = |fast: bool, workload: &mut dyn FnMut(&mut SimSink)| {
        let mut sim = SimSink::new(machine.hierarchy());
        sim.set_fast_path(fast);
        workload(&mut sim);
        sim.finish()
    };
    (run(true, &mut workload), run(false, &mut workload))
}

#[test]
fn matmul_fast_equals_slow() {
    let machine = machine();
    for variant in [matmul::interchanged, matmul::transposed] {
        let (fast, slow) = both_ways(&machine, |sim| {
            let mut space = AddressSpace::new();
            let mut data = matmul::MatMulData::new(&mut space, 40, 7);
            variant(&mut data, sim);
        });
        assert_eq!(fast, slow);
        assert!(fast.l1.misses() > 0, "working set must overflow the L1");
    }
}

#[test]
fn pde_fast_equals_slow() {
    let (fast, slow) = both_ways(&machine(), |sim| {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, 48, 3);
        pde::regular(&mut data, 2, sim);
    });
    assert_eq!(fast, slow);
}

#[test]
fn sor_fast_equals_slow() {
    let (fast, slow) = both_ways(&machine(), |sim| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, 64, 11);
        sor::untiled(&mut data, 2, sim);
    });
    assert_eq!(fast, slow);
}

#[test]
fn nbody_fast_equals_slow() {
    let (fast, slow) = both_ways(&machine(), |sim| {
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, 96, 2024);
        nbody::unthreaded(&mut data, 1, nbody::NBodyParams::default(), sim);
    });
    assert_eq!(fast, slow);
    assert!(fast.classes.total() > 0, "classifier must have been hit");
}

#[test]
fn fast_equals_slow_with_mmu_attached() {
    // A scrambling page mapping plus a tiny TLB exercises the per-page
    // translation walk and the TLB's LRU set in both modes.
    let config = HierarchyConfig::new(
        CacheConfig::new(1 << 12, 32, 1).unwrap(),
        CacheConfig::new(1 << 16, 128, 4).unwrap(),
    );
    let run = |fast: bool| {
        let mmu = Mmu::new(PageMapper::new(PagePolicy::RandomSeeded(5), 4096), 8);
        let mut sim = SimSink::new(Hierarchy::with_mmu(config, mmu));
        sim.set_fast_path(fast);
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 40, 9);
        matmul::interchanged(&mut data, &mut sim);
        sim.finish()
    };
    let (fast, slow) = (run(true), run(false));
    assert_eq!(fast, slow);
    assert!(fast.tlb.accesses > 0, "the MMU must have been consulted");
    assert!(fast.tlb.misses > 0, "an 8-entry TLB must thrash here");
}

#[test]
fn batched_delivery_equals_element_wise_on_a_real_trace() {
    // Capture a real workload trace, then replay it into the simulator
    // one access at a time and in batches of every small size: the
    // batched sink entry point must be an exact refactoring.
    let machine = machine();
    let mut recorded = VecSink::new();
    {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, 48, 23);
        sor::untiled(&mut data, 2, &mut recorded);
    }
    let accesses = recorded.accesses();
    assert!(accesses.len() > 5_000, "trace too small to be interesting");
    let element_wise = {
        let mut sim = SimSink::new(machine.hierarchy());
        for &access in accesses {
            sim.access(access);
        }
        sim.finish()
    };
    for chunk_size in [1usize, 2, 3, 7, 16, 64, 1024] {
        let mut sim = SimSink::new(machine.hierarchy());
        for chunk in accesses.chunks(chunk_size) {
            sim.access_batch(chunk);
        }
        assert_eq!(sim.finish(), element_wise, "chunk size {chunk_size}");
    }
}

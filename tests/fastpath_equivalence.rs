//! Differential testing of the fast simulation paths: with the fast
//! lookups enabled (same-line rehits, MRU-first way probes, classifier
//! shortcut, line-index hashing) every [`SimReport`] field must be
//! *bit-identical* to the exhaustive reference path, on every workload,
//! with and without an MMU attached, and regardless of how accesses are
//! batched on their way into the sink. The reports are a pure function
//! of the reference stream; the fast paths may only change how quickly
//! they are computed.
//!
//! The same contract extends to the *sharded* simulation pipeline:
//! [`ShardedSimSink`] partitions the reference stream by address-region
//! selector bits, simulates the shards on private hierarchies, and
//! reduces — and its report must be bit-identical to the unsharded
//! [`SimSink`]'s for every workload, shard count, and valid selector
//! shift, including the degenerate cases (one shard, an MMU forcing the
//! inline fallback).

use proptest::prelude::*;
use thread_locality::apps::{matmul, nbody, pde, sor};
use thread_locality::sim::{
    CacheConfig, Hierarchy, HierarchyConfig, MachineModel, Mmu, PageMapper, PagePolicy, ShardPlan,
    ShardedSimSink, SimReport, SimSink,
};
use thread_locality::trace::{Access, AccessKind, Addr, AddressSpace, TraceSink, VecSink};

/// A machine small enough that the toy working sets below still
/// overflow the caches (otherwise the fast paths would never face an
/// eviction).
fn machine() -> MachineModel {
    MachineModel::r8000()
        .scaled_split(1.0 / 16.0, 1.0 / 64.0)
        .expect("valid scaled machine")
}

/// Runs `workload` twice — fast paths on and off — and returns both
/// reports.
fn both_ways(
    machine: &MachineModel,
    mut workload: impl FnMut(&mut SimSink),
) -> (SimReport, SimReport) {
    let run = |fast: bool, workload: &mut dyn FnMut(&mut SimSink)| {
        let mut sim = SimSink::new(machine.hierarchy());
        sim.set_fast_path(fast);
        workload(&mut sim);
        sim.finish()
    };
    (run(true, &mut workload), run(false, &mut workload))
}

#[test]
fn matmul_fast_equals_slow() {
    let machine = machine();
    for variant in [matmul::interchanged, matmul::transposed] {
        let (fast, slow) = both_ways(&machine, |sim| {
            let mut space = AddressSpace::new();
            let mut data = matmul::MatMulData::new(&mut space, 40, 7);
            variant(&mut data, sim);
        });
        assert_eq!(fast, slow);
        assert!(fast.l1.misses() > 0, "working set must overflow the L1");
    }
}

#[test]
fn pde_fast_equals_slow() {
    let (fast, slow) = both_ways(&machine(), |sim| {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, 48, 3);
        pde::regular(&mut data, 2, sim);
    });
    assert_eq!(fast, slow);
}

#[test]
fn sor_fast_equals_slow() {
    let (fast, slow) = both_ways(&machine(), |sim| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, 64, 11);
        sor::untiled(&mut data, 2, sim);
    });
    assert_eq!(fast, slow);
}

#[test]
fn nbody_fast_equals_slow() {
    let (fast, slow) = both_ways(&machine(), |sim| {
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, 96, 2024);
        nbody::unthreaded(&mut data, 1, nbody::NBodyParams::default(), sim);
    });
    assert_eq!(fast, slow);
    assert!(fast.classes.total() > 0, "classifier must have been hit");
}

#[test]
fn fast_equals_slow_with_mmu_attached() {
    // A scrambling page mapping plus a tiny TLB exercises the per-page
    // translation walk and the TLB's LRU set in both modes.
    let config = HierarchyConfig::new(
        CacheConfig::new(1 << 12, 32, 1).unwrap(),
        CacheConfig::new(1 << 16, 128, 4).unwrap(),
    );
    let run = |fast: bool| {
        let mmu = Mmu::new(PageMapper::new(PagePolicy::RandomSeeded(5), 4096), 8);
        let mut sim = SimSink::new(Hierarchy::with_mmu(config, mmu));
        sim.set_fast_path(fast);
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 40, 9);
        matmul::interchanged(&mut data, &mut sim);
        sim.finish()
    };
    let (fast, slow) = (run(true), run(false));
    assert_eq!(fast, slow);
    assert!(fast.tlb.accesses > 0, "the MMU must have been consulted");
    assert!(fast.tlb.misses > 0, "an 8-entry TLB must thrash here");
}

// ---------------------------------------------------------------------
// Sharded ≡ unsharded: the tentpole safety contract. Shard counts to
// exercise come from `SIM_SHARDS` when set (the CI matrix pins one
// count per leg) and default to the full sweep locally.
// ---------------------------------------------------------------------

fn shard_counts() -> Vec<u32> {
    match std::env::var("SIM_SHARDS") {
        Ok(s) => vec![s.parse().expect("SIM_SHARDS must be a shard count")],
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Runs `$workload` (generic over the sink) once through the unsharded
/// sink and once per shard count through the sharded sink; every report
/// must be bit-identical. A macro because the workload kernels are
/// generic functions — they need monomorphizing per concrete sink type.
macro_rules! assert_sharded_matches_unsharded {
    ($name:literal, |$sim:ident| $workload:expr) => {{
        let machine = machine();
        let unsharded = {
            let mut $sim = SimSink::new(machine.hierarchy());
            $workload;
            $sim.finish()
        };
        for shards in shard_counts() {
            let mut $sim = ShardedSimSink::new(machine.hierarchy(), shards);
            $workload;
            assert_eq!($sim.finish(), unsharded, "{} @ {shards} shards", $name);
        }
    }};
}

#[test]
fn matmul_sharded_equals_unsharded() {
    assert_sharded_matches_unsharded!("matmul", |sim| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 40, 7);
        matmul::interchanged(&mut data, &mut sim);
    });
}

#[test]
fn pde_sharded_equals_unsharded() {
    assert_sharded_matches_unsharded!("pde", |sim| {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, 48, 3);
        pde::regular(&mut data, 2, &mut sim);
    });
}

#[test]
fn sor_sharded_equals_unsharded() {
    assert_sharded_matches_unsharded!("sor", |sim| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, 64, 11);
        sor::untiled(&mut data, 2, &mut sim);
    });
}

#[test]
fn nbody_sharded_equals_unsharded() {
    assert_sharded_matches_unsharded!("nbody", |sim| {
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, 96, 2024);
        nbody::unthreaded(&mut data, 1, nbody::NBodyParams::default(), &mut sim);
    });
}

#[test]
fn sharded_with_mmu_falls_back_inline_and_matches() {
    // An MMU breaks the selector-bit partition (fully-associative TLB,
    // physically-indexed levels), so the sharded sink must degrade to
    // one inline shard — and still match, TLB stats included.
    let config = HierarchyConfig::new(
        CacheConfig::new(1 << 12, 32, 1).unwrap(),
        CacheConfig::new(1 << 16, 128, 4).unwrap(),
    );
    let hierarchy = || {
        let mmu = Mmu::new(PageMapper::new(PagePolicy::RandomSeeded(5), 4096), 8);
        Hierarchy::with_mmu(config, mmu)
    };
    assert_eq!(ShardPlan::for_hierarchy(&hierarchy(), 8).shards(), 1);
    let workload = |sink: &mut VecSink| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 40, 9);
        matmul::interchanged(&mut data, sink);
    };
    let mut recorded = VecSink::new();
    workload(&mut recorded);
    let mut unsharded = SimSink::new(hierarchy());
    let mut sharded = ShardedSimSink::new(hierarchy(), 8);
    unsharded.access_batch(recorded.accesses());
    sharded.access_batch(recorded.accesses());
    let (unsharded, sharded) = (unsharded.finish(), sharded.finish());
    assert_eq!(unsharded, sharded);
    assert!(sharded.tlb.misses > 0, "the TLB must have been exercised");
}

proptest! {
    /// Any shard count × any *valid* selector shift × an arbitrary
    /// access stream: the sharded report is byte-identical to the
    /// unsharded one. This sweeps partitions the auto-planner never
    /// picks (high shifts split on coarse regions and skew the queue
    /// load) — skew may cost throughput, never correctness.
    #[test]
    fn any_partition_yields_identical_reports(
        shards in 1u32..=8,
        // Valid selector field for the scaled r8000 below: L2 line 128
        // (lo = 7) and the smallest way is 16 KiB / 16 = 1 KiB... use
        // with_shift's own validation to skip invalid combinations.
        shift in 7u32..14,
        records in prop::collection::vec(
            (0u64..(1 << 21), 1u32..=512, any::<bool>()),
            1..800,
        ),
    ) {
        let machine = MachineModel::r8000().scaled(1.0 / 16.0).expect("valid scaled machine");
        // Shifts outside this geometry's selector field are skipped:
        // ShardPlan::for_hierarchy never produces them.
        let plan = ShardPlan::with_shift(&machine.hierarchy(), shards, shift);
        prop_assume!(plan.is_some());
        let plan = plan.unwrap();
        let accesses: Vec<Access> = records
            .iter()
            .map(|&(addr, size, is_write)| Access {
                addr: Addr::new(addr),
                size,
                kind: if is_write { AccessKind::Write } else { AccessKind::Read },
            })
            .collect();
        let mut unsharded = SimSink::new(machine.hierarchy());
        let mut sharded = ShardedSimSink::with_plan(machine.hierarchy(), plan);
        for chunk in accesses.chunks(64) {
            unsharded.access_batch(chunk);
            sharded.access_batch(chunk);
        }
        prop_assert_eq!(unsharded.finish(), sharded.finish());
    }
}

#[test]
fn batched_delivery_equals_element_wise_on_a_real_trace() {
    // Capture a real workload trace, then replay it into the simulator
    // one access at a time and in batches of every small size: the
    // batched sink entry point must be an exact refactoring.
    let machine = machine();
    let mut recorded = VecSink::new();
    {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, 48, 23);
        sor::untiled(&mut data, 2, &mut recorded);
    }
    let accesses = recorded.accesses();
    assert!(accesses.len() > 5_000, "trace too small to be interesting");
    let element_wise = {
        let mut sim = SimSink::new(machine.hierarchy());
        for &access in accesses {
            sim.access(access);
        }
        sim.finish()
    };
    for chunk_size in [1usize, 2, 3, 7, 16, 64, 1024] {
        let mut sim = SimSink::new(machine.hierarchy());
        for chunk in accesses.chunks(chunk_size) {
            sim.access_batch(chunk);
        }
        assert_eq!(sim.finish(), element_wise, "chunk size {chunk_size}");
    }
}

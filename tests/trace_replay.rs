//! Trace-file round trip: recording a workload to a Pixie-style trace
//! file and replaying it through the simulator must match the online
//! simulation exactly — the decoupling the paper's original
//! Pixie → DineroIII pipeline relied on.

use thread_locality::apps::matmul;
use thread_locality::sim::{MachineModel, SimSink};
use thread_locality::trace::{AddressSpace, TeeSink, TraceFileReader, TraceFileWriter};

#[test]
fn recorded_trace_replays_to_identical_simulation() {
    let machine = MachineModel::r10000().scaled_split(1.0, 1.0 / 32.0);

    // Online simulation, while simultaneously recording the trace.
    let mut buffer: Vec<u8> = Vec::new();
    let online = {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 48, 3);
        let mut tee = TeeSink::new(
            SimSink::new(machine.hierarchy()),
            TraceFileWriter::new(&mut buffer),
        );
        matmul::transposed(&mut data, &mut tee);
        let (sim, writer) = tee.into_inner();
        writer.finish().expect("flush trace");
        sim.finish()
    };

    // Offline replay of the recorded file into a fresh simulator.
    let mut replayed_sim = SimSink::new(machine.hierarchy());
    let events = TraceFileReader::new(buffer.as_slice())
        .replay(&mut replayed_sim)
        .expect("replay trace");
    let replayed = replayed_sim.finish();

    assert!(events > 0);
    assert_eq!(online, replayed, "online and replayed simulations diverge");
}

#[test]
fn trace_bytes_are_deterministic() {
    let record = || {
        let mut buffer: Vec<u8> = Vec::new();
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 24, 9);
        let mut writer = TraceFileWriter::new(&mut buffer);
        matmul::interchanged(&mut data, &mut writer);
        writer.finish().unwrap();
        buffer
    };
    assert_eq!(record(), record());
}

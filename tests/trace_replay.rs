//! Trace-file round trip: recording a workload to a Pixie-style trace
//! file and replaying it through the simulator must match the online
//! simulation exactly — the decoupling the paper's original
//! Pixie → DineroIII pipeline relied on.

use proptest::prelude::*;
use thread_locality::apps::matmul;
use thread_locality::sim::{MachineModel, ShardedSimSink, SimSink};
use thread_locality::trace::{
    Access, AccessKind, Addr, AddressSpace, CompactBuf, CompactIter, TeeSink, TraceFileReader,
    TraceFileWriter, TraceSink,
};

#[test]
fn recorded_trace_replays_to_identical_simulation() {
    let machine = MachineModel::r10000()
        .scaled_split(1.0, 1.0 / 32.0)
        .expect("valid scaled machine");

    // Online simulation, while simultaneously recording the trace.
    let mut buffer: Vec<u8> = Vec::new();
    let online = {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 48, 3);
        let mut tee = TeeSink::new(
            SimSink::new(machine.hierarchy()),
            TraceFileWriter::new(&mut buffer),
        );
        matmul::transposed(&mut data, &mut tee);
        let (sim, writer) = tee.into_inner();
        writer.finish().expect("flush trace");
        sim.finish()
    };

    // Offline replay of the recorded file into a fresh simulator.
    let mut replayed_sim = SimSink::new(machine.hierarchy());
    let events = TraceFileReader::new(buffer.as_slice())
        .replay(&mut replayed_sim)
        .expect("replay trace");
    let replayed = replayed_sim.finish();

    assert!(events > 0);
    assert_eq!(online, replayed, "online and replayed simulations diverge");
}

/// A deliberately tiny machine, so even short fuzz traces cause
/// evictions, write-backs and classifier traffic.
fn tiny_sim() -> SimSink {
    SimSink::new(
        MachineModel::r8000()
            .scaled_split(1.0 / 256.0, 1.0 / 1024.0)
            .expect("valid scaled machine")
            .hierarchy(),
    )
}

#[test]
fn records_at_the_top_of_the_address_space_replay_without_panicking() {
    // A trace is untrusted input: records whose (addr, size) span would
    // wrap past u64::MAX must clamp, not overflow, and the simulation
    // must complete. Valid-but-extreme records are an error-free case.
    let mut buffer: Vec<u8> = Vec::new();
    let mut writer = TraceFileWriter::new(&mut buffer);
    writer.access(Access::read(Addr::new(u64::MAX), 8));
    writer.access(Access::write(Addr::new(u64::MAX - 3), u32::MAX));
    writer.access(Access::read(Addr::new(u64::MAX - 4096), u32::MAX));
    writer.instructions(u64::MAX);
    writer.finish().expect("flush trace");

    let mut sim = tiny_sim();
    let events = TraceFileReader::new(buffer.as_slice())
        .replay(&mut sim)
        .expect("extreme but well-formed records replay cleanly");
    assert_eq!(events, 4);
    let report = sim.finish();
    assert_eq!(report.reads + report.writes, 3);
    assert_eq!(report.instructions, u64::MAX);
}

proptest! {
    /// Replaying *arbitrary bytes* never panics: every outcome is
    /// either a clean end-of-trace or an `io::Error` (truncation,
    /// unknown tag). Whatever does decode is simulated, so any decoded
    /// address — including spans touching u64::MAX — must be handled by
    /// the hierarchy's saturating span arithmetic. (Sizes are clamped
    /// on the way in only to bound the *walk length* of this test:
    /// random bytes decode to multi-gigabyte spans every few records.)
    #[test]
    fn arbitrary_bytes_never_panic_the_replay_pipeline(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        struct ClampSink(SimSink);
        impl TraceSink for ClampSink {
            fn access(&mut self, access: Access) {
                self.0.access(Access {
                    size: access.size.min(4096),
                    ..access
                });
            }
            fn instructions(&mut self, count: u64) {
                self.0.instructions(count);
            }
        }
        let mut sink = ClampSink(tiny_sim());
        let _ = TraceFileReader::new(bytes.as_slice()).replay(&mut sink);
        let report = sink.0.finish();
        // Every decoded access touches at least one L1 line.
        prop_assert!(report.l1.references() >= report.reads + report.writes);
    }

    /// A trace of arbitrary *well-formed* records round-trips: what the
    /// writer encodes, the reader replays verbatim, and the replayed
    /// simulation equals feeding the records to the simulator directly.
    #[test]
    fn arbitrary_records_round_trip_through_the_file_format(
        records in prop::collection::vec(
            (any::<u64>(), 1u32..=8192, any::<bool>()),
            0..512,
        ),
    ) {
        let accesses: Vec<Access> = records
            .iter()
            .map(|&(addr, size, is_write)| Access {
                addr: Addr::new(addr),
                size,
                kind: if is_write { AccessKind::Write } else { AccessKind::Read },
            })
            .collect();
        let mut buffer: Vec<u8> = Vec::new();
        let mut writer = TraceFileWriter::new(&mut buffer);
        for &access in &accesses {
            writer.access(access);
        }
        writer.finish().unwrap();

        let mut direct = tiny_sim();
        for &access in &accesses {
            direct.access(access);
        }
        let mut replayed = tiny_sim();
        let events = TraceFileReader::new(buffer.as_slice())
            .replay(&mut replayed)
            .expect("well-formed trace");
        prop_assert_eq!(events as usize, accesses.len());
        prop_assert_eq!(replayed.finish(), direct.finish());
    }
}

proptest! {
    /// The compact delta encoding is lossless over its full input
    /// domain: arbitrary well-formed records — including size 0,
    /// `u32::MAX` sizes, and address deltas that wrap through the top
    /// of the address space — decode back verbatim.
    #[test]
    fn arbitrary_records_round_trip_through_the_compact_codec(
        records in prop::collection::vec(
            (any::<u64>(), any::<u32>(), any::<bool>()),
            0..512,
        ),
    ) {
        let accesses: Vec<Access> = records
            .iter()
            .map(|&(addr, size, is_write)| Access {
                addr: Addr::new(addr),
                size,
                kind: if is_write { AccessKind::Write } else { AccessKind::Read },
            })
            .collect();
        let mut buf = CompactBuf::new();
        buf.extend(accesses.iter().copied());
        prop_assert_eq!(buf.len(), accesses.len());
        let decoded: Vec<Access> = buf.iter().collect();
        prop_assert_eq!(decoded, accesses);
    }

    /// Decoding *arbitrary bytes* as compact records never panics, and
    /// whatever does decode simulates cleanly — through the unsharded
    /// sink and through the sharded pipeline, which must still agree
    /// with each other on hostile input.
    #[test]
    fn arbitrary_compact_bytes_never_panic_and_shard_identically(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let machine = MachineModel::r8000().scaled_split(1.0 / 256.0, 1.0 / 1024.0).expect("valid scaled machine");
        let mut unsharded = SimSink::new(machine.hierarchy());
        let mut sharded = ShardedSimSink::new(machine.hierarchy(), 4);
        for access in CompactIter::new(&bytes) {
            // Clamp only the walk length (random bytes decode to
            // multi-gigabyte spans every few records), exactly as the
            // trace-file fuzz above does.
            let access = Access { size: access.size.min(4096), ..access };
            unsharded.access(access);
            sharded.access(access);
        }
        prop_assert_eq!(unsharded.finish(), sharded.finish());
    }
}

#[test]
fn trace_bytes_are_deterministic() {
    let record = || {
        let mut buffer: Vec<u8> = Vec::new();
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, 24, 9);
        let mut writer = TraceFileWriter::new(&mut buffer);
        matmul::interchanged(&mut data, &mut writer);
        writer.finish().unwrap();
        buffer
    };
    assert_eq!(record(), record());
}

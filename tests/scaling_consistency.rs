//! Validates the scaled-experiment methodology: two different
//! problem/machine scales with the same data : L2 ratio must exhibit
//! the same *per-reference* miss behaviour. This is the assumption that
//! lets the harness stand in for the paper's full-size runs.

use thread_locality::apps::{matmul, sor};
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{MachineModel, SimReport, SimSink};
use thread_locality::trace::AddressSpace;

fn rel_close(a: f64, b: f64, tolerance: f64) -> bool {
    if a == 0.0 && b == 0.0 {
        return true;
    }
    (a - b).abs() / a.abs().max(b.abs()) < tolerance
}

fn sor_untiled(n: usize, l2_factor: f64, sweeps: usize) -> SimReport {
    let machine = MachineModel::r8000()
        .scaled_split(1.0, l2_factor)
        .expect("valid scaled machine");
    let mut space = AddressSpace::new();
    let mut data = sor::SorData::new(&mut space, n, 3);
    let mut sim = SimSink::new(machine.hierarchy());
    sor::untiled(&mut data, sweeps, &mut sim);
    sim.finish()
}

#[test]
fn sor_capacity_rate_is_scale_invariant() {
    // Both configurations have array : L2 = 8 : 1, and both keep the
    // L2 well above the (unscaled) L1 — shrinking the L2 to the L1's
    // size degenerates the hierarchy, which is itself a scaling limit
    // this test originally discovered.
    // (362² ≈ 1 MiB data vs 128 KiB; 512² = 2 MiB vs 256 KiB.)
    let small = sor_untiled(362, 1.0 / 16.0, 8);
    let large = sor_untiled(512, 1.0 / 8.0, 8);
    let small_rate = small.classes.capacity as f64 / small.data_references() as f64;
    let large_rate = large.classes.capacity as f64 / large.data_references() as f64;
    assert!(
        rel_close(small_rate, large_rate, 0.15),
        "capacity rate {small_rate:.5} vs {large_rate:.5}"
    );
}

fn matmul_l2_misses(n: usize, l2_factor: f64, threaded: bool) -> SimReport {
    let machine = MachineModel::r8000()
        .scaled_split(1.0, l2_factor)
        .expect("valid scaled machine");
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, n, 42);
    let mut sim = SimSink::new(machine.hierarchy());
    if threaded {
        let config = SchedulerConfig::for_cache(machine.l2_config().size(), 2).unwrap();
        let report = matmul::threaded(&mut data, config, &mut sim);
        sim.add_threads(report.threads);
    } else {
        matmul::interchanged(&mut data, &mut sim);
    }
    sim.finish()
}

#[test]
fn matmul_untiled_miss_rate_is_scale_invariant() {
    // Both configurations have matrices : L2 = 12 : 1 (the paper's
    // ratio): 3·96²·8 ≈ 216 KiB vs 16 KiB... we use powers of two that
    // keep the ratio equal across the pair.
    let small = matmul_l2_misses(96, 1.0 / 114.0, false); // L2 ~ 16 KiB
    let large = matmul_l2_misses(192, 1.0 / 28.5, false); // L2 ~ 64 KiB
    let small_rate = small.l2.misses() as f64 / small.data_references() as f64;
    let large_rate = large.l2.misses() as f64 / large.data_references() as f64;
    assert!(
        rel_close(small_rate, large_rate, 0.2),
        "L2 miss rate {small_rate:.5} vs {large_rate:.5}"
    );
}

#[test]
fn matmul_threaded_speaks_the_same_at_two_scales() {
    // The threaded-vs-untiled capacity reduction factor should agree
    // across scales with the same ratio.
    let factor = |n: usize, l2_factor: f64| {
        let untiled = matmul_l2_misses(n, l2_factor, false);
        let threaded = matmul_l2_misses(n, l2_factor, true);
        untiled.classes.capacity as f64 / threaded.classes.capacity.max(1) as f64
    };
    // Matrices : L2 ≈ 12 : 1 at both scales, L2 ≥ 4x the L1.
    let small = factor(181, 1.0 / 32.0); // ~786 KiB data vs 64 KiB L2
    let large = factor(256, 1.0 / 16.0); // 1.5 MiB data vs 128 KiB L2
    assert!(
        small > 3.0 && large > 3.0,
        "threading wins at both scales: {small:.1} and {large:.1}"
    );
    assert!(
        rel_close(small.ln(), large.ln(), 0.35),
        "reduction factors {small:.2} vs {large:.2} diverge"
    );
}

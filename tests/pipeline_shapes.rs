//! End-to-end shape tests: the paper's qualitative claims must hold
//! when each workload is traced through the simulated hierarchy.
//!
//! These run at a small scale (seconds, not minutes); the full-ratio
//! reproduction lives in the `repro` harness.

use thread_locality::apps::{matmul, nbody, pde, sor};
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{MachineModel, SimReport, SimSink};
use thread_locality::trace::AddressSpace;

/// A small machine keeping the paper's "data is several times the L2"
/// regime at test-friendly sizes: full L1, L2 scaled to 32 KiB.
fn test_machine() -> MachineModel {
    MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 64.0)
        .expect("valid scaled machine")
}

fn sim_matmul(
    machine: &MachineModel,
    n: usize,
    f: impl FnOnce(
        &mut matmul::MatMulData,
        &mut AddressSpace,
        &mut SimSink,
    ) -> thread_locality::apps::WorkloadReport,
) -> SimReport {
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, n, 5);
    let mut sim = SimSink::new(machine.hierarchy());
    let report = f(&mut data, &mut space, &mut sim);
    sim.add_threads(report.threads);
    sim.finish()
}

#[test]
fn matmul_threaded_beats_untiled_and_tiled_beats_threaded() {
    let machine = test_machine();
    let n = 96; // 3 x 72 KiB matrices vs 32 KiB L2
    let untiled = sim_matmul(&machine, n, |d, _s, sink| matmul::interchanged(d, sink));
    let threaded = sim_matmul(&machine, n, |d, _s, sink| {
        let config = SchedulerConfig::for_cache(machine.l2_config().size(), 2).unwrap();
        matmul::threaded(d, config, sink)
    });
    let tiles =
        matmul::TileConfig::for_caches(machine.l1_config().size(), machine.l2_config().size());
    let tiled = sim_matmul(&machine, n, |d, s, sink| {
        matmul::tiled_interchanged(d, tiles, s, sink)
    });

    // Paper Table 3's ordering: untiled >> threaded > tiled on L2
    // misses, with capacity misses dominating the untiled version.
    assert!(
        untiled.l2.misses() > 3 * threaded.l2.misses(),
        "threaded must cut L2 misses by a large factor: {} vs {}",
        untiled.l2.misses(),
        threaded.l2.misses()
    );
    assert!(
        threaded.l2.misses() >= tiled.l2.misses(),
        "tiled is at least as good as threaded: {} vs {}",
        tiled.l2.misses(),
        threaded.l2.misses()
    );
    assert!(
        untiled.classes.capacity > untiled.classes.conflict,
        "untiled misses are capacity-dominated"
    );
    // Tiling also cuts instructions and references (Table 3).
    assert!(tiled.instructions < untiled.instructions);
    assert!(tiled.data_references() < untiled.data_references());
    // Modeled time ordering follows (Table 2).
    let t_untiled = untiled.time_on(&machine).total();
    let t_threaded = threaded.time_on(&machine).total();
    let t_tiled = tiled.time_on(&machine).total();
    assert!(t_tiled < t_threaded && t_threaded < t_untiled);
}

#[test]
fn pde_fused_versions_halve_capacity_misses() {
    let machine = test_machine();
    let n = 257;
    let iters = 5;
    let run = |which: &str| -> SimReport {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, n, 3);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = match which {
            "regular" => pde::regular(&mut data, iters, &mut sim),
            "cc" => pde::cache_conscious(&mut data, iters, &mut sim),
            _ => {
                let config = SchedulerConfig::for_cache(machine.l2_config().size(), 1).unwrap();
                let r = pde::threaded(&mut data, iters, config, &mut sim);
                sim.add_threads(r.threads);
                r
            }
        };
        let _ = report;
        sim.finish()
    };
    let regular = run("regular");
    let cc = run("cc");
    let threaded = run("threaded");
    // Paper Table 5: the fused versions avoid ~half the capacity misses.
    assert!(
        regular.classes.capacity as f64 > 1.7 * cc.classes.capacity as f64,
        "{} vs {}",
        regular.classes.capacity,
        cc.classes.capacity
    );
    assert!(
        regular.classes.capacity as f64 > 1.7 * threaded.classes.capacity as f64,
        "{} vs {}",
        regular.classes.capacity,
        threaded.classes.capacity
    );
    // Identical reference streams aside from ordering.
    assert_eq!(regular.data_references(), cc.data_references());
}

#[test]
fn sor_threaded_and_tiled_eliminate_capacity_misses() {
    // A gentler L2 scale: the tiled version's band working set is
    // O(n·s) and must still fit the cache, as it does in the paper's
    // configuration.
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 16.0)
        .expect("valid scaled machine");
    let n = 251;
    let t = 10;
    let mut space = AddressSpace::new();

    let mut data = sor::SorData::new(&mut space, n, 3);
    let mut sim = SimSink::new(machine.hierarchy());
    sor::untiled(&mut data, t, &mut sim);
    let untiled = sim.finish();

    let mut data = sor::SorData::new(&mut space, n, 3);
    let mut sim = SimSink::new(machine.hierarchy());
    sor::hand_tiled(&mut data, t, 18, &mut sim);
    let tiled = sim.finish();

    let mut data = sor::SorData::new(&mut space, n, 3);
    let mut sim = SimSink::new(machine.hierarchy());
    let config = SchedulerConfig::builder()
        .block_size(machine.l2_config().size() / 4)
        .build()
        .unwrap();
    let report = sor::threaded(&mut data, t, config, &mut sim);
    sim.add_threads(report.threads);
    let threaded = sim.finish();

    // Paper Table 7: untiled is dominated by capacity misses; both
    // transformed versions remove nearly all of them.
    assert!(untiled.classes.capacity > 10 * tiled.classes.capacity.max(1));
    assert!(untiled.classes.capacity > 10 * threaded.classes.capacity.max(1));
    // Hand-tiling slashes L1 misses; threading does not (Table 7's
    // signature contrast).
    assert!(tiled.l1.misses() * 5 < untiled.l1.misses());
    assert!(threaded.l1.misses() * 2 > untiled.l1.misses());
}

#[test]
fn nbody_threading_cuts_l2_misses() {
    // Keep the paper's bodies-to-L2 pressure: enough bodies that the
    // tree dwarfs the cache, but a cache big enough that a scheduling
    // cell's subtree fits.
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 16.0)
        .expect("valid scaled machine");
    let bodies = 6000;
    let params = nbody::NBodyParams {
        plane_extent: 4 * (machine.l2_config().size() / 3),
        ..nbody::NBodyParams::default()
    };

    let mut space = AddressSpace::new();
    let mut data = nbody::NBodyData::new(&mut space, bodies, 17);
    data.shuffle_storage_order(1);
    let snapshot = data.snapshot();
    let mut sim = SimSink::new(machine.hierarchy());
    nbody::unthreaded(&mut data, 1, params, &mut sim);
    let unthreaded = sim.finish();

    let mut data2 = nbody::NBodyData::new(&mut space, bodies, 17);
    data2.restore(&snapshot);
    let mut sim = SimSink::new(machine.hierarchy());
    let config = SchedulerConfig::for_cache(machine.l2_config().size(), 3).unwrap();
    let report = nbody::threaded(&mut data2, 1, params, config, &mut sim);
    sim.add_threads(report.threads);
    let threaded = sim.finish();

    assert!(
        unthreaded.l2.misses() as f64 > 1.5 * threaded.l2.misses() as f64,
        "{} vs {}",
        unthreaded.l2.misses(),
        threaded.l2.misses()
    );
    assert_eq!(data.snapshot().len(), data2.snapshot().len());
}

#[test]
fn block_size_beyond_cache_degrades_matmul() {
    // Figure 4's knee: blocks whose dimensions sum beyond the L2 size
    // stop protecting the bin working set.
    let machine = test_machine();
    let l2 = machine.l2_config().size();
    let n = 96;
    let run = |block: u64| -> u64 {
        sim_matmul(&machine, n, |d, _s, sink| {
            let config = SchedulerConfig::builder()
                .block_size(block)
                .build()
                .unwrap();
            matmul::threaded(d, config, sink)
        })
        .l2
        .misses()
    };
    let good = run(l2 / 2);
    let oversized = run(l2 * 8);
    assert!(
        oversized as f64 > 1.5 * good as f64,
        "block {} misses {good}, block {} misses {oversized}",
        l2 / 2,
        l2 * 8
    );
}

#[test]
fn classes_partition_misses_in_every_workload() {
    let machine = test_machine();
    let reports = [
        sim_matmul(&machine, 48, |d, _s, sink| matmul::interchanged(d, sink)),
        {
            let mut space = AddressSpace::new();
            let mut data = pde::PdeData::new(&mut space, 65, 3);
            let mut sim = SimSink::new(machine.hierarchy());
            pde::regular(&mut data, 2, &mut sim);
            sim.finish()
        },
        {
            let mut space = AddressSpace::new();
            let mut data = nbody::NBodyData::new(&mut space, 500, 3);
            let mut sim = SimSink::new(machine.hierarchy());
            nbody::unthreaded(&mut data, 1, nbody::NBodyParams::default(), &mut sim);
            sim.finish()
        },
    ];
    for report in reports {
        assert_eq!(report.classes.total(), report.l2.misses());
        assert!(report.l1.misses() <= report.l1.references());
    }
}

#[test]
fn three_level_modern_hierarchy_preserves_the_benefit() {
    // The paper's closing prediction: the technique should carry over
    // (and matter more) as the memory gap widens. Shape-check it on a
    // scaled three-level modern machine.
    let n = 96;
    let data_bytes = (3 * n * n * 8) as f64;
    let modern = MachineModel::modern();
    let llc = modern
        .hierarchy_config()
        .l3
        .expect("modern machine has an L3")
        .size() as f64;
    let machine = modern
        .scaled_split(1.0, data_bytes / 12.0 / llc)
        .expect("valid scaled machine");
    let untiled = sim_matmul(&machine, n, |d, _s, sink| matmul::interchanged(d, sink));
    let threaded = sim_matmul(&machine, n, |d, _s, sink| {
        let llc = machine.hierarchy_config().l3.expect("L3").size();
        let config = SchedulerConfig::for_cache(llc, 2).unwrap();
        matmul::threaded(d, config, sink)
    });
    assert!(
        untiled.l3.is_some() && threaded.l3.is_some(),
        "L3 simulated"
    );
    assert!(
        untiled.llc_misses() > 2 * threaded.llc_misses(),
        "three-level LLC misses: {} vs {}",
        untiled.llc_misses(),
        threaded.llc_misses()
    );
    assert_eq!(untiled.classes.total(), untiled.llc_misses());
    let speedup = untiled.time_on(&machine).total() / threaded.time_on(&machine).total();
    assert!(speedup > 1.5, "modern modeled speedup {speedup}");
}

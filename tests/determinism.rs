//! Reproducibility: identical seeds and configurations must produce
//! identical traces, simulations, and schedules across runs — the
//! property that makes the harness's tables stable.

use thread_locality::apps::{matmul, sor};
use thread_locality::sched::{Hints, RunMode, Scheduler, SchedulerConfig, Tour};
use thread_locality::sim::{MachineModel, SimReport, SimSink};
use thread_locality::trace::AddressSpace;

fn run_once() -> SimReport {
    let machine = MachineModel::r10000()
        .scaled_split(1.0, 1.0 / 32.0)
        .expect("valid scaled machine");
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, 64, 99);
    let mut sim = SimSink::new(machine.hierarchy());
    let config = SchedulerConfig::for_cache(machine.l2_config().size(), 2).unwrap();
    let report = matmul::threaded(&mut data, config, &mut sim);
    sim.add_threads(report.threads);
    sim.finish()
}

#[test]
fn simulation_is_deterministic() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b);
}

#[test]
fn sor_threaded_result_is_deterministic() {
    let checksum = |seed: u64| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, 65, seed);
        let config = SchedulerConfig::builder().block_size(4096).build().unwrap();
        let report = sor::threaded(&mut data, 5, config, &mut memtrace_null());
        report.checksum
    };
    assert_eq!(checksum(7).to_bits(), checksum(7).to_bits());
    assert_ne!(checksum(7).to_bits(), checksum(8).to_bits());
}

fn memtrace_null() -> thread_locality::trace::NullSink {
    thread_locality::trace::NullSink
}

#[test]
fn random_tour_is_seeded() {
    type Log = Vec<usize>;
    fn body(log: &mut Log, i: usize, _j: usize) {
        log.push(i);
    }
    let order_for = |seed: u64| {
        let config = SchedulerConfig::builder()
            .block_size(1024)
            .tour(Tour::Random(seed))
            .build()
            .unwrap();
        let mut sched: Scheduler<Log> = Scheduler::new(config);
        for i in 0..64 {
            sched.fork(body, i, 0, Hints::one((i as u64 * 100_000).into()));
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        log
    };
    assert_eq!(order_for(3), order_for(3));
    assert_ne!(order_for(3), order_for(4));
}

#[test]
fn address_space_layout_is_stable() {
    let layout = || {
        let mut space = AddressSpace::new();
        let data = matmul::MatMulData::new(&mut space, 8, 1);
        (data.a.base(), data.b.base(), data.c.base())
    };
    assert_eq!(layout(), layout());
}

//! Differential testing: for order-independent workloads, a parallel
//! schedule must compute *bit-identical* results to the sequential
//! locality schedule, for every worker count and steal policy.
//!
//! The three kernels here (blocked matmul, Jacobi SOR, direct N-body)
//! are deliberately self-contained rather than reusing `apps::*`: the
//! library's SOR is Gauss–Seidel (order-dependent by design), while
//! these kernels give every thread a read-only input and a disjoint
//! output cell, so *any* execution order — sequential tour order, or
//! workers racing and stealing bins from each other — must produce the
//! same IEEE-754 bits. Each thread's internal summation order is fixed
//! by its own loop, so there is no floating-point reassociation to
//! forgive: the comparison is `f64::to_bits` equality, not epsilon.

use std::cell::UnsafeCell;
use thread_locality::sched::{
    FifoScheduler, Hints, ParScheduler, RandomScheduler, RunMode, Scheduler, SchedulerConfig,
    StealPolicy, ThreadScheduler,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const POLICIES: [StealPolicy; 4] = [
    StealPolicy::None,
    StealPolicy::Random,
    StealPolicy::LocalityAware,
    StealPolicy::TopologyAware,
];

/// One output cell that parallel workers may write without holding a
/// lock.
///
/// SAFETY contract: every cell is written by at most one thread per
/// run (each scheduled thread owns a distinct index — the property the
/// suite's `threads_run` assertions and `properties.rs` pin down), and
/// no cell is read until `ParScheduler::run` has joined all workers.
#[repr(transparent)]
struct SyncCell(UnsafeCell<f64>);

unsafe impl Sync for SyncCell {}

impl SyncCell {
    fn set(&self, v: f64) {
        // SAFETY: per the type contract, no other thread accesses this
        // cell concurrently.
        unsafe { *self.0.get() = v }
    }

    fn get(&self) -> f64 {
        // SAFETY: only called after the run joined every worker.
        unsafe { *self.0.get() }
    }
}

fn cells(n: usize) -> Vec<SyncCell> {
    (0..n).map(|_| SyncCell(UnsafeCell::new(0.0))).collect()
}

fn config(policy: StealPolicy) -> SchedulerConfig {
    SchedulerConfig::builder()
        .block_size(4096)
        .steal_policy(policy)
        .build()
        .expect("power-of-two block")
}

fn assert_bits_eq(kernel: &str, seq: &[f64], par: &[f64], policy: StealPolicy, workers: usize) {
    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(par).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "{kernel}[{i}]: sequential {s} != parallel {p} ({policy}, {workers} workers)"
        );
    }
}

/// Deterministic pseudo-random doubles in (-1, 1), so inputs are not
/// degenerate but runs are reproducible without a RNG dependency.
fn noise(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

// ---------------------------------------------------------------------
// Matrix multiply: one thread per dot product, disjoint C cells.
// ---------------------------------------------------------------------

const MM_N: usize = 20;

fn mm_dot(a: &[f64], b: &[f64], i: usize, j: usize) -> f64 {
    let mut acc = 0.0;
    for k in 0..MM_N {
        acc += a[i * MM_N + k] * b[k * MM_N + j];
    }
    acc
}

fn mm_hints(i: usize, j: usize) -> Hints {
    // Two hints per thread, as in the paper's matmul: the row of A and
    // the column of B the dot product reads.
    Hints::two(
        ((0x1000_0000 + i * 2048) as u64).into(),
        ((0x2000_0000 + j * 2048) as u64).into(),
    )
}

struct SeqMat {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

fn mm_seq_body(ctx: &mut SeqMat, i: usize, j: usize) {
    ctx.c[i * MM_N + j] = mm_dot(&ctx.a, &ctx.b, i, j);
}

struct ParMat {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<SyncCell>,
}

fn mm_par_body(ctx: &ParMat, i: usize, j: usize) {
    ctx.c[i * MM_N + j].set(mm_dot(&ctx.a, &ctx.b, i, j));
}

fn mm_sequential() -> (Vec<f64>, u64) {
    let mut sched: Scheduler<SeqMat> = Scheduler::new(config(StealPolicy::default()));
    for i in 0..MM_N {
        for j in 0..MM_N {
            sched.fork(mm_seq_body, i, j, mm_hints(i, j));
        }
    }
    let mut ctx = SeqMat {
        a: noise(1, MM_N * MM_N),
        b: noise(2, MM_N * MM_N),
        c: vec![0.0; MM_N * MM_N],
    };
    let stats = sched.run(&mut ctx, RunMode::Consume);
    (ctx.c, stats.threads_run)
}

fn mm_parallel(policy: StealPolicy, workers: usize) -> (Vec<f64>, u64) {
    let mut sched: ParScheduler<ParMat> = ParScheduler::new(config(policy));
    for i in 0..MM_N {
        for j in 0..MM_N {
            sched.fork(mm_par_body, i, j, mm_hints(i, j));
        }
    }
    let ctx = ParMat {
        a: noise(1, MM_N * MM_N),
        b: noise(2, MM_N * MM_N),
        c: cells(MM_N * MM_N),
    };
    let stats = sched.run(&ctx, workers);
    (ctx.c.iter().map(SyncCell::get).collect(), stats.threads_run)
}

#[test]
fn matmul_parallel_matches_sequential_bitwise() {
    let (seq, seq_threads) = mm_sequential();
    assert_eq!(seq_threads, (MM_N * MM_N) as u64);
    for policy in POLICIES {
        for workers in WORKER_COUNTS {
            let (par, par_threads) = mm_parallel(policy, workers);
            assert_eq!(par_threads, seq_threads, "{policy}, {workers} workers");
            assert_bits_eq("matmul", &seq, &par, policy, workers);
        }
    }
}

// ---------------------------------------------------------------------
// Jacobi SOR: double-buffered 5-point stencil, one thread per interior
// row per sweep. (Jacobi, not Gauss–Seidel: each sweep reads only the
// previous sweep's buffer, so row updates commute.)
// ---------------------------------------------------------------------

const SOR_N: usize = 32;
const SOR_SWEEPS: usize = 4;
const SOR_OMEGA: f64 = 0.9;

fn sor_row(src: &[f64], dst: &[SyncCell], row: usize) {
    for col in 1..SOR_N - 1 {
        let idx = row * SOR_N + col;
        let neighbours = src[idx - SOR_N] + src[idx + SOR_N] + src[idx - 1] + src[idx + 1];
        dst[idx].set(src[idx] + SOR_OMEGA * (neighbours / 4.0 - src[idx]));
    }
}

fn sor_hints(row: usize) -> Hints {
    Hints::one(((0x3000_0000 + row * SOR_N * 8) as u64).into())
}

struct SeqSor {
    src: Vec<f64>,
    dst: Vec<f64>,
}

fn sor_seq_body(ctx: &mut SeqSor, row: usize, _unused: usize) {
    for col in 1..SOR_N - 1 {
        let idx = row * SOR_N + col;
        let neighbours =
            ctx.src[idx - SOR_N] + ctx.src[idx + SOR_N] + ctx.src[idx - 1] + ctx.src[idx + 1];
        ctx.dst[idx] = ctx.src[idx] + SOR_OMEGA * (neighbours / 4.0 - ctx.src[idx]);
    }
}

struct ParSor {
    src: Vec<f64>,
    dst: Vec<SyncCell>,
}

fn sor_par_body(ctx: &ParSor, row: usize, _unused: usize) {
    sor_row(&ctx.src, &ctx.dst, row);
}

fn sor_sequential() -> (Vec<f64>, u64) {
    let mut grid = noise(3, SOR_N * SOR_N);
    let mut threads = 0;
    for _ in 0..SOR_SWEEPS {
        let mut sched: Scheduler<SeqSor> = Scheduler::new(config(StealPolicy::default()));
        for row in 1..SOR_N - 1 {
            sched.fork(sor_seq_body, row, 0, sor_hints(row));
        }
        let mut ctx = SeqSor {
            dst: grid.clone(), // boundary rows/columns carry over
            src: grid,
        };
        threads += sched.run(&mut ctx, RunMode::Consume).threads_run;
        grid = ctx.dst;
    }
    (grid, threads)
}

fn sor_parallel(policy: StealPolicy, workers: usize) -> (Vec<f64>, u64) {
    let mut grid = noise(3, SOR_N * SOR_N);
    let mut threads = 0;
    for _ in 0..SOR_SWEEPS {
        let mut sched: ParScheduler<ParSor> = ParScheduler::new(config(policy));
        for row in 1..SOR_N - 1 {
            sched.fork(sor_par_body, row, 0, sor_hints(row));
        }
        let dst = cells(SOR_N * SOR_N);
        for (cell, &v) in dst.iter().zip(&grid) {
            cell.set(v); // boundary rows/columns carry over
        }
        let ctx = ParSor { src: grid, dst };
        threads += sched.run(&ctx, workers).threads_run;
        grid = ctx.dst.iter().map(SyncCell::get).collect();
    }
    (grid, threads)
}

#[test]
fn jacobi_sor_parallel_matches_sequential_bitwise() {
    let (seq, seq_threads) = sor_sequential();
    assert_eq!(seq_threads, ((SOR_N - 2) * SOR_SWEEPS) as u64);
    for policy in POLICIES {
        for workers in WORKER_COUNTS {
            let (par, par_threads) = sor_parallel(policy, workers);
            assert_eq!(par_threads, seq_threads, "{policy}, {workers} workers");
            assert_bits_eq("sor", &seq, &par, policy, workers);
        }
    }
}

// ---------------------------------------------------------------------
// Direct N-body accelerations: one thread per body, disjoint acc[i].
// ---------------------------------------------------------------------

const NB_N: usize = 48;

struct Bodies {
    pos: Vec<f64>,  // x,y,z triples
    mass: Vec<f64>, // positive masses
}

fn bodies() -> Bodies {
    Bodies {
        pos: noise(4, NB_N * 3),
        mass: noise(5, NB_N).into_iter().map(|m| m.abs() + 0.5).collect(),
    }
}

/// Acceleration on body `i` from every other body, in a fixed j-order
/// so the summation is bit-reproducible.
fn nb_accel(bodies: &Bodies, i: usize) -> [f64; 3] {
    let (xi, yi, zi) = (
        bodies.pos[i * 3],
        bodies.pos[i * 3 + 1],
        bodies.pos[i * 3 + 2],
    );
    let mut acc = [0.0f64; 3];
    for j in 0..NB_N {
        if j == i {
            continue;
        }
        let dx = bodies.pos[j * 3] - xi;
        let dy = bodies.pos[j * 3 + 1] - yi;
        let dz = bodies.pos[j * 3 + 2] - zi;
        let r2 = dx * dx + dy * dy + dz * dz + 1e-6;
        let inv_r3 = 1.0 / (r2 * r2.sqrt());
        acc[0] += bodies.mass[j] * dx * inv_r3;
        acc[1] += bodies.mass[j] * dy * inv_r3;
        acc[2] += bodies.mass[j] * dz * inv_r3;
    }
    acc
}

fn nb_hints(i: usize) -> Hints {
    Hints::one(((0x4000_0000 + i * 1024) as u64).into())
}

struct SeqNb {
    bodies: Bodies,
    acc: Vec<f64>,
}

fn nb_seq_body(ctx: &mut SeqNb, i: usize, _unused: usize) {
    let a = nb_accel(&ctx.bodies, i);
    ctx.acc[i * 3..i * 3 + 3].copy_from_slice(&a);
}

struct ParNb {
    bodies: Bodies,
    acc: Vec<SyncCell>,
}

fn nb_par_body(ctx: &ParNb, i: usize, _unused: usize) {
    let a = nb_accel(&ctx.bodies, i);
    for (d, &v) in a.iter().enumerate() {
        ctx.acc[i * 3 + d].set(v);
    }
}

fn nb_sequential() -> (Vec<f64>, u64) {
    let mut sched: Scheduler<SeqNb> = Scheduler::new(config(StealPolicy::default()));
    for i in 0..NB_N {
        sched.fork(nb_seq_body, i, 0, nb_hints(i));
    }
    let mut ctx = SeqNb {
        bodies: bodies(),
        acc: vec![0.0; NB_N * 3],
    };
    let stats = sched.run(&mut ctx, RunMode::Consume);
    (ctx.acc, stats.threads_run)
}

fn nb_parallel(policy: StealPolicy, workers: usize) -> (Vec<f64>, u64) {
    let mut sched: ParScheduler<ParNb> = ParScheduler::new(config(policy));
    for i in 0..NB_N {
        sched.fork(nb_par_body, i, 0, nb_hints(i));
    }
    let ctx = ParNb {
        bodies: bodies(),
        acc: cells(NB_N * 3),
    };
    let stats = sched.run(&ctx, workers);
    (
        ctx.acc.iter().map(SyncCell::get).collect(),
        stats.threads_run,
    )
}

#[test]
fn nbody_parallel_matches_sequential_bitwise() {
    let (seq, seq_threads) = nb_sequential();
    assert_eq!(seq_threads, NB_N as u64);
    for policy in POLICIES {
        for workers in WORKER_COUNTS {
            let (par, par_threads) = nb_parallel(policy, workers);
            assert_eq!(par_threads, seq_threads, "{policy}, {workers} workers");
            assert_bits_eq("nbody", &seq, &par, policy, workers);
        }
    }
}

// ---------------------------------------------------------------------
// Baseline schedulers: FIFO and seeded-random are engine configurations
// too (SingleBin + allocation order; UniqueBin + random tour), so on
// these order-independent kernels their results must be bit-identical
// to the locality schedule — any drain order computes the same bits.
// ---------------------------------------------------------------------

/// Seeds for the random baseline; the exact per-seed orders are pinned
/// against the pre-refactor implementation in the core crate's
/// `random_order_matches_pre_refactor_golden`.
const RANDOM_SEEDS: [u64; 3] = [7, 42, 99];

fn mm_baseline<S: ThreadScheduler<SeqMat>>(sched: &mut S) -> (Vec<f64>, u64) {
    for i in 0..MM_N {
        for j in 0..MM_N {
            sched.fork(mm_seq_body, i, j, mm_hints(i, j));
        }
    }
    let mut ctx = SeqMat {
        a: noise(1, MM_N * MM_N),
        b: noise(2, MM_N * MM_N),
        c: vec![0.0; MM_N * MM_N],
    };
    let stats = sched.run(&mut ctx, RunMode::Consume);
    (ctx.c, stats.threads_run)
}

fn sor_baseline<S: ThreadScheduler<SeqSor>>(mut make: impl FnMut() -> S) -> (Vec<f64>, u64) {
    let mut grid = noise(3, SOR_N * SOR_N);
    let mut threads = 0;
    for _ in 0..SOR_SWEEPS {
        let mut sched = make();
        for row in 1..SOR_N - 1 {
            sched.fork(sor_seq_body, row, 0, sor_hints(row));
        }
        let mut ctx = SeqSor {
            dst: grid.clone(),
            src: grid,
        };
        threads += sched.run(&mut ctx, RunMode::Consume).threads_run;
        grid = ctx.dst;
    }
    (grid, threads)
}

fn nb_baseline<S: ThreadScheduler<SeqNb>>(sched: &mut S) -> (Vec<f64>, u64) {
    for i in 0..NB_N {
        sched.fork(nb_seq_body, i, 0, nb_hints(i));
    }
    let mut ctx = SeqNb {
        bodies: bodies(),
        acc: vec![0.0; NB_N * 3],
    };
    let stats = sched.run(&mut ctx, RunMode::Consume);
    (ctx.acc, stats.threads_run)
}

#[test]
fn fifo_scheduler_matches_sequential_bitwise() {
    let fifo_policy = StealPolicy::None; // label only; baselines don't steal
    let (seq, seq_threads) = mm_sequential();
    let (fifo, fifo_threads) = mm_baseline(&mut FifoScheduler::new());
    assert_eq!(fifo_threads, seq_threads);
    assert_bits_eq("matmul/fifo", &seq, &fifo, fifo_policy, 1);

    let (seq, seq_threads) = sor_sequential();
    let (fifo, fifo_threads) = sor_baseline(FifoScheduler::new);
    assert_eq!(fifo_threads, seq_threads);
    assert_bits_eq("sor/fifo", &seq, &fifo, fifo_policy, 1);

    let (seq, seq_threads) = nb_sequential();
    let (fifo, fifo_threads) = nb_baseline(&mut FifoScheduler::new());
    assert_eq!(fifo_threads, seq_threads);
    assert_bits_eq("nbody/fifo", &seq, &fifo, fifo_policy, 1);
}

#[test]
fn random_scheduler_matches_sequential_bitwise() {
    let label = StealPolicy::None;
    let (mm_seq, mm_threads) = mm_sequential();
    let (sor_seq, sor_threads) = sor_sequential();
    let (nb_seq, nb_threads) = nb_sequential();
    for seed in RANDOM_SEEDS {
        let (random, threads) = mm_baseline(&mut RandomScheduler::new(seed));
        assert_eq!(threads, mm_threads, "seed {seed}");
        assert_bits_eq("matmul/random", &mm_seq, &random, label, 1);

        let (random, threads) = sor_baseline(|| RandomScheduler::new(seed));
        assert_eq!(threads, sor_threads, "seed {seed}");
        assert_bits_eq("sor/random", &sor_seq, &random, label, 1);

        let (random, threads) = nb_baseline(&mut RandomScheduler::new(seed));
        assert_eq!(threads, nb_threads, "seed {seed}");
        assert_bits_eq("nbody/random", &nb_seq, &random, label, 1);
    }
}
